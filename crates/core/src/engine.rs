//! The deterministic, in-process ICPE engine.

use crate::config::{ClustererKind, IcpeConfig};
use crate::pipeline::{build_engine, engine_kind_name, restore_engine};
use icpe_cluster::{GdcClusterer, RjcClusterer, SnapshotClusterer, SrjClusterer};
use icpe_pattern::PatternEngine;
use icpe_types::{
    CheckpointError, ClusterSnapshot, EngineCheckpoint, Pattern, PipelineCheckpoint,
    ProgressCheckpoint, Snapshot, CHECKPOINT_VERSION,
};
use std::time::Duration;

/// Per-phase timing accumulated by [`IcpeEngine`] — the decomposition behind
/// the stacked latency bars of Figures 12–13.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Total time spent in the clustering phase.
    pub clustering: Duration,
    /// Total time spent in the enumeration phase.
    pub enumeration: Duration,
    /// Number of snapshots processed.
    pub snapshots: usize,
    /// Sum of cluster sizes and cluster count (for the average-cluster-size
    /// series of Figures 12–13).
    pub cluster_members: usize,
    /// Number of clusters seen.
    pub clusters: usize,
}

impl PhaseTimings {
    /// Mean clustering latency per snapshot.
    pub fn avg_clustering(&self) -> Duration {
        checked_div(self.clustering, self.snapshots)
    }

    /// Mean enumeration latency per snapshot.
    pub fn avg_enumeration(&self) -> Duration {
        checked_div(self.enumeration, self.snapshots)
    }

    /// Mean cluster size over the stream.
    pub fn avg_cluster_size(&self) -> f64 {
        if self.clusters == 0 {
            0.0
        } else {
            self.cluster_members as f64 / self.clusters as f64
        }
    }
}

fn checked_div(d: Duration, n: usize) -> Duration {
    if n == 0 {
        Duration::ZERO
    } else {
        d / n as u32
    }
}

/// The synchronous ICPE engine: push snapshots in time order, collect
/// patterns. Snapshots must be dense in time (every tick, possibly empty);
/// [`icpe_gen::TraceSet::to_snapshots`]-style input or the runtime's aligner
/// output both satisfy this.
pub struct IcpeEngine {
    clusterer: Box<dyn SnapshotClusterer + Send>,
    enumerator: Box<dyn PatternEngine + Send>,
    timings: PhaseTimings,
}

impl IcpeEngine {
    /// Builds the engine from a configuration.
    pub fn new(config: IcpeConfig) -> Self {
        let clusterer: Box<dyn SnapshotClusterer + Send> = match config.clusterer {
            ClustererKind::Rjc => {
                Box::new(RjcClusterer::new(config.lg, config.dbscan, config.metric))
            }
            ClustererKind::Srj => {
                Box::new(SrjClusterer::new(config.lg, config.dbscan, config.metric))
            }
            ClustererKind::Gdc => Box::new(GdcClusterer::new(config.dbscan, config.metric)),
        };
        let enumerator = build_engine(config.enumerator, config.engine_config());
        IcpeEngine {
            clusterer,
            enumerator,
            timings: PhaseTimings::default(),
        }
    }

    /// Builds the engine with its enumeration state restored from a
    /// checkpoint (the clustering phase is stateless across snapshots and
    /// starts fresh). Phase timings are wall-clock and restart at zero.
    pub fn from_checkpoint(
        config: IcpeConfig,
        ckpt: &EngineCheckpoint,
    ) -> Result<Self, CheckpointError> {
        let mut engine = IcpeEngine::new(config.clone());
        engine.enumerator =
            restore_engine(config.enumerator, config.engine_config(), ckpt, |_| true)?;
        Ok(engine)
    }

    /// Captures the enumeration engine's streaming state in durable form.
    pub fn checkpoint_enumerator(&self) -> Option<EngineCheckpoint> {
        self.enumerator.checkpoint()
    }

    /// Clusters one snapshot and feeds the result to the enumeration engine;
    /// returns any patterns that became reportable.
    pub fn push_snapshot(&mut self, snapshot: Snapshot) -> Vec<Pattern> {
        let t0 = std::time::Instant::now();
        let clusters = self.clusterer.cluster(&snapshot);
        let t1 = std::time::Instant::now();
        let patterns = self.enumerator.push(&clusters);
        let t2 = std::time::Instant::now();

        self.timings.clustering += t1 - t0;
        self.timings.enumeration += t2 - t1;
        self.timings.snapshots += 1;
        self.timings.clusters += clusters.clusters.len();
        self.timings.cluster_members += clusters
            .clusters
            .iter()
            .map(icpe_types::Cluster::len)
            .sum::<usize>();
        patterns
    }

    /// Feeds an externally clustered snapshot (skips the clustering phase).
    pub fn push_cluster_snapshot(&mut self, clusters: &ClusterSnapshot) -> Vec<Pattern> {
        let t1 = std::time::Instant::now();
        let patterns = self.enumerator.push(clusters);
        self.timings.enumeration += t1.elapsed();
        self.timings.snapshots += 1;
        patterns
    }

    /// Flushes the enumeration engine at end of stream.
    pub fn finish(&mut self) -> Vec<Pattern> {
        self.enumerator.finish()
    }

    /// The per-phase timings accumulated so far.
    pub fn timings(&self) -> PhaseTimings {
        self.timings
    }

    /// Names of the configured methods, `(clusterer, enumerator)`.
    pub fn method_names(&self) -> (&'static str, &'static str) {
        (self.clusterer.name(), self.enumerator.name())
    }

    /// Partitions the enumerator refused (Baseline blow-up guard; 0 for
    /// FBA/VBA). Non-zero means the pattern result is incomplete.
    pub fn overflowed_partitions(&self) -> usize {
        self.enumerator.overflowed_partitions()
    }
}

/// Push-based façade over [`IcpeEngine`]: accepts raw, possibly
/// out-of-order GPS records and runs the §4 time-alignment inline, so a
/// single-threaded deployment consumes the same wire input as the
/// distributed pipeline. Patterns come back from each push as their
/// snapshots seal.
pub struct StreamingEngine {
    aligner: icpe_runtime::TimeAligner,
    engine: IcpeEngine,
    records_ingested: u64,
}

impl StreamingEngine {
    /// Builds the engine; `config.aligner` controls sealing behavior.
    pub fn new(config: IcpeConfig) -> Self {
        StreamingEngine {
            aligner: icpe_runtime::TimeAligner::new(config.aligner),
            engine: IcpeEngine::new(config),
            records_ingested: 0,
        }
    }

    /// Captures the engine's full streaming state — the single-threaded
    /// analogue of [`crate::LivePipeline::checkpoint`], sharing the same
    /// [`PipelineCheckpoint`] schema. `seq` is caller-assigned.
    pub fn checkpoint(&self, seq: u64) -> Option<PipelineCheckpoint> {
        let engine = self.engine.checkpoint_enumerator()?;
        let aligner = self.aligner.checkpoint();
        Some(PipelineCheckpoint {
            version: CHECKPOINT_VERSION,
            seq,
            records_ingested: self.records_ingested,
            progress: ProgressCheckpoint {
                snapshots_completed: self.engine.timings.snapshots as u64,
                late_records: aligner.late_dropped,
                max_sealed: aligner.sealed_up_to.map(|s| s - 1),
            },
            aligner,
            engine,
            // Single-threaded: no keyed exchange, nothing to route, no
            // sharded merge path, and no stage registry.
            routing: None,
            sync: None,
            obs: None,
        })
    }

    /// Rebuilds a streaming engine from a checkpoint; feeding it the input
    /// stream from record `checkpoint.records_ingested` onward resumes the
    /// run as if it never stopped.
    pub fn from_checkpoint(
        config: IcpeConfig,
        ckpt: &PipelineCheckpoint,
    ) -> Result<Self, CheckpointError> {
        ckpt.check_version()?;
        let expected = engine_kind_name(config.enumerator);
        if ckpt.engine.kind != expected {
            return Err(CheckpointError::EngineMismatch {
                checkpoint: ckpt.engine.kind.clone(),
                config: expected.into(),
            });
        }
        let aligner = icpe_runtime::TimeAligner::from_checkpoint(config.aligner, &ckpt.aligner);
        let mut engine = IcpeEngine::from_checkpoint(config, &ckpt.engine)?;
        engine.timings.snapshots = ckpt.progress.snapshots_completed as usize;
        Ok(StreamingEngine {
            aligner,
            engine,
            records_ingested: ckpt.records_ingested,
        })
    }

    /// Ingests one record; processes any snapshots that became sealable and
    /// returns the patterns that became reportable.
    pub fn push(&mut self, record: icpe_types::GpsRecord) -> Vec<Pattern> {
        self.records_ingested += 1;
        let mut patterns = Vec::new();
        for snapshot in self.aligner.push(record) {
            patterns.extend(self.engine.push_snapshot(snapshot));
        }
        patterns
    }

    /// Ends the stream: seals everything buffered and flushes the
    /// enumeration engine.
    pub fn finish(&mut self) -> Vec<Pattern> {
        let mut patterns = Vec::new();
        for snapshot in self.aligner.flush() {
            patterns.extend(self.engine.push_snapshot(snapshot));
        }
        patterns.extend(self.engine.finish());
        patterns
    }

    /// Records dropped for arriving after their snapshot sealed.
    pub fn late_dropped(&self) -> u64 {
        self.aligner.late_dropped()
    }

    /// The wrapped synchronous engine (timings, method names).
    pub fn engine(&self) -> &IcpeEngine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnumeratorKind;
    use icpe_pattern::unique_object_sets;
    use icpe_types::{Constraints, ObjectId, Point, Timestamp};

    fn config(enumerator: EnumeratorKind) -> IcpeConfig {
        IcpeConfig::builder()
            .constraints(Constraints::new(3, 4, 2, 2).unwrap())
            .epsilon(1.0)
            .min_pts(3)
            .enumerator(enumerator)
            .build()
            .unwrap()
    }

    /// Three objects walking together, two wandering far away.
    fn walking_snapshots(ticks: u32) -> Vec<Snapshot> {
        (0..ticks)
            .map(|t| {
                let base = t as f64 * 0.5;
                Snapshot::from_pairs(
                    Timestamp(t),
                    [
                        (ObjectId(1), Point::new(base, 0.0)),
                        (ObjectId(2), Point::new(base + 0.3, 0.3)),
                        (ObjectId(3), Point::new(base + 0.6, 0.0)),
                        (ObjectId(8), Point::new(100.0 + base, 50.0)),
                        (ObjectId(9), Point::new(-100.0, 50.0 - base)),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn end_to_end_detects_the_walking_group() {
        for kind in [
            EnumeratorKind::Baseline,
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
        ] {
            let mut engine = IcpeEngine::new(config(kind));
            let mut patterns = Vec::new();
            for s in walking_snapshots(10) {
                patterns.extend(engine.push_snapshot(s));
            }
            patterns.extend(engine.finish());
            let sets = unique_object_sets(&patterns);
            assert!(
                sets.contains(&vec![ObjectId(1), ObjectId(2), ObjectId(3)]),
                "{kind:?}: {sets:?}"
            );
            // The far-away wanderers never cluster.
            assert!(sets
                .iter()
                .all(|s| !s.contains(&ObjectId(8)) && !s.contains(&ObjectId(9))));
        }
    }

    #[test]
    fn timings_accumulate() {
        let mut engine = IcpeEngine::new(config(EnumeratorKind::Fba));
        for s in walking_snapshots(6) {
            engine.push_snapshot(s);
        }
        let t = engine.timings();
        assert_eq!(t.snapshots, 6);
        assert!(t.avg_cluster_size() >= 3.0);
        assert!(t.clustering > Duration::ZERO);
    }

    #[test]
    fn all_clusterers_agree_end_to_end() {
        let mut results = Vec::new();
        for kind in [ClustererKind::Rjc, ClustererKind::Srj, ClustererKind::Gdc] {
            let cfg = IcpeConfig::builder()
                .constraints(Constraints::new(3, 4, 2, 2).unwrap())
                .epsilon(1.0)
                .min_pts(3)
                .clusterer(kind)
                .build()
                .unwrap();
            let mut engine = IcpeEngine::new(cfg);
            let mut patterns = Vec::new();
            for s in walking_snapshots(10) {
                patterns.extend(engine.push_snapshot(s));
            }
            patterns.extend(engine.finish());
            results.push(unique_object_sets(&patterns));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn method_names_are_exposed() {
        let engine = IcpeEngine::new(config(EnumeratorKind::Vba));
        assert_eq!(engine.method_names(), ("RJC", "VBA"));
    }

    #[test]
    fn streaming_engine_checkpoint_restore_is_equivalent() {
        for kind in [
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
            EnumeratorKind::Baseline,
        ] {
            // Reference: uninterrupted run.
            let mut records = Vec::new();
            for s in walking_snapshots(12) {
                let last = (s.time.0 > 0).then(|| Timestamp(s.time.0 - 1));
                for e in &s.entries {
                    records.push(icpe_types::GpsRecord::new(e.id, e.location, s.time, last));
                }
            }
            let mut full = StreamingEngine::new(config(kind));
            let mut want = Vec::new();
            for r in &records {
                want.extend(full.push(*r));
            }
            want.extend(full.finish());

            // Interrupted run: checkpoint mid-stream, restore, continue.
            let mut first = StreamingEngine::new(config(kind));
            let mut got = Vec::new();
            let cut = records.len() / 2;
            for r in &records[..cut] {
                got.extend(first.push(*r));
            }
            let ckpt = first.checkpoint(1).unwrap();
            assert_eq!(ckpt.records_ingested as usize, cut);
            drop(first); // crash

            let mut second = StreamingEngine::from_checkpoint(config(kind), &ckpt).unwrap();
            for r in &records[cut..] {
                got.extend(second.push(*r));
            }
            got.extend(second.finish());
            assert_eq!(
                unique_object_sets(&got),
                unique_object_sets(&want),
                "{kind:?} diverged after restore"
            );
            assert_eq!(second.engine().timings().snapshots, 12);
        }
    }

    #[test]
    fn streaming_engine_matches_snapshot_engine_under_disorder() {
        // Same workload via push_snapshot (ordered) and via raw records in
        // scrambled arrival order: the aligner must make them identical.
        let mut reference = IcpeEngine::new(config(EnumeratorKind::Fba));
        let mut want = Vec::new();
        for s in walking_snapshots(10) {
            want.extend(reference.push_snapshot(s));
        }
        want.extend(reference.finish());

        let mut records = Vec::new();
        for s in walking_snapshots(10) {
            let last = if s.time.0 == 0 {
                None
            } else {
                Some(Timestamp(s.time.0 - 1))
            };
            for e in &s.entries {
                records.push(icpe_types::GpsRecord::new(e.id, e.location, s.time, last));
            }
        }
        // Bounded scramble: disjoint swaps displacing records by exactly one
        // tick (5 records per tick), within the aligner's lateness allowance.
        let n = records.len();
        for i in (0..n.saturating_sub(5)).step_by(10) {
            records.swap(i, i + 5);
        }

        let mut streaming = StreamingEngine::new(config(EnumeratorKind::Fba));
        let mut got = Vec::new();
        for r in records {
            got.extend(streaming.push(r));
        }
        got.extend(streaming.finish());
        assert_eq!(streaming.late_dropped(), 0);
        assert_eq!(unique_object_sets(&got), unique_object_sets(&want));
        assert_eq!(streaming.engine().timings().snapshots, 10);
    }
}
