//! The distributed streaming deployment (the paper's Flink job, Fig. 5).
//!
//! ```text
//! Source(1) → [Discretize(N, keyBy id)] → Align(1) → GridAllocate(1)
//!     → GridQuery(N, keyBy grid cell)    ┐  keyed data,
//!     → GridSync+DBSCAN(1)               │  broadcast per-snapshot ticks
//!     → Enumerate(N, keyBy owner id)     ┘
//!     → Sink(1)
//! ```
//!
//! Snapshot boundaries travel as broadcast *ticks* (the runtime equivalent
//! of Flink punctuation/watermarks): a keyed subtask knows a snapshot's
//! contribution is complete when it has seen the boundary tick from each of
//! its upstream producers. Latency is measured from a snapshot entering
//! GridAllocate until all enumeration subtasks have reported its tick done;
//! throughput is completed snapshots per second — the two measures of §7.
//!
//! Two entry points are provided:
//!
//! * [`IcpePipeline::run`] — batch: feed a pre-built record vector, block
//!   until completion, collect everything (the evaluation-harness form);
//! * [`IcpePipeline::launch`] — live: the dataflow runs on background
//!   threads, records are **pushed** through a bounded channel as they
//!   arrive ([`LivePipeline::push`]), and results are **delivered to a sink
//!   callback** ([`PipelineEvent`]) the moment they are produced. This is
//!   the deployment form the `icpe-serve` network layer builds on; the
//!   channel bound gives end-to-end backpressure from clustering all the
//!   way back to the TCP socket.

use crate::config::{ClustererKind, EnumeratorKind, IcpeConfig};
use icpe_cluster::allocate::allocate_one;
use icpe_cluster::query::NeighborPair;
use icpe_cluster::sync::PairCollector;
use icpe_cluster::{dbscan_from_pairs, CellQueryEngine, GdcClusterer, SnapshotClusterer};
use icpe_index::{Grid, GridKey, RTree};
use icpe_pattern::partition::Partition;
use icpe_pattern::{id_partitions, BaselineEngine, FbaEngine, PatternEngine, VbaEngine};
use icpe_runtime::{
    ingest_channel, AlignOperator, Collector, Disconnected, Exchange, MetricsReport, Operator,
    PipelineMetrics, Routing, Stream, StreamProgress,
};
use icpe_types::{
    ClusterSnapshot, DbscanParams, DistanceMetric, GpsRecord, ObjectId, Pattern, Snapshot,
    Timestamp,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// What a pipeline run produces.
#[derive(Debug)]
pub struct PipelineOutput {
    /// Every reported pattern (across all windows; dedupe with
    /// [`icpe_pattern::unique_object_sets`] if only the sets matter).
    pub patterns: Vec<Pattern>,
    /// Latency/throughput summary.
    pub metrics: MetricsReport,
}

/// An output of the live pipeline, delivered to the sink callback the
/// moment the dataflow produces it.
#[derive(Debug, Clone)]
pub enum PipelineEvent {
    /// A co-movement pattern became reportable.
    Pattern(Pattern),
    /// Every enumeration subtask finished snapshot `time`. Patterns whose
    /// enumeration window closed by `time` have been delivered; windows
    /// still open (and the end-of-stream flush) may deliver further
    /// patterns later, including some whose witnessing sequence ends at or
    /// before `time`.
    SnapshotSealed {
        /// The completed snapshot's discretized time.
        time: u32,
    },
}

/// A cloneable handle for pushing records into a running [`LivePipeline`]
/// (one per producer; many producers may feed one pipeline).
#[derive(Debug, Clone)]
pub struct RecordSender {
    inner: crossbeam::channel::Sender<GpsRecord>,
}

impl RecordSender {
    /// Pushes one record, blocking while the pipeline's ingest buffer is
    /// full (backpressure). Fails once the pipeline has shut down.
    pub fn push(&self, record: GpsRecord) -> Result<(), Disconnected> {
        self.inner.send(record).map_err(|_| Disconnected)
    }
}

/// A running streaming deployment (see [`IcpePipeline::launch`]).
///
/// Dropping the handle without calling [`LivePipeline::finish`] detaches
/// the dataflow: it keeps draining already-pushed records on its background
/// threads and winds down at end of stream.
#[derive(Debug)]
pub struct LivePipeline {
    input: Option<RecordSender>,
    driver: Option<JoinHandle<()>>,
    metrics: PipelineMetrics,
}

impl LivePipeline {
    /// A fresh producer handle. The stream ends only when *every* producer
    /// handle (and the pipeline's own, released by
    /// [`LivePipeline::finish`]) has been dropped.
    pub fn sender(&self) -> RecordSender {
        self.input
            .clone()
            .expect("LivePipeline::sender called after finish")
    }

    /// Pushes one record through the pipeline's own producer handle.
    pub fn push(&self, record: GpsRecord) -> Result<(), Disconnected> {
        self.input
            .as_ref()
            .expect("LivePipeline::push called after finish")
            .push(record)
    }

    /// The shared latency/throughput recorder — readable while the
    /// pipeline runs (the serving layer's status endpoint polls this).
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// Live stream-position gauges (ingested vs. sealed frontier, lag,
    /// late-record count).
    pub fn progress(&self) -> StreamProgress {
        self.metrics.progress()
    }

    /// Ends the stream (drops this handle's sender) and blocks until the
    /// dataflow drains; returns the final metrics. Producer handles from
    /// [`LivePipeline::sender`] keep the stream open until they drop too.
    ///
    /// Panics if a dataflow subtask panicked.
    pub fn finish(mut self) -> MetricsReport {
        self.input = None;
        if let Some(driver) = self.driver.take() {
            if let Err(payload) = driver.join() {
                std::panic::resume_unwind(payload);
            }
        }
        self.metrics.report()
    }
}

/// The distributed ICPE deployment.
pub struct IcpePipeline;

impl IcpePipeline {
    /// Launches the dataflow in live (push-based) mode: records enter
    /// through [`LivePipeline::push`] / [`RecordSender::push`] and every
    /// result is handed to `on_event` as soon as it exists. `on_event` runs
    /// on the pipeline's driver thread; keep it cheap or hand off to a
    /// queue (as `icpe-serve`'s fan-out hub does).
    pub fn launch(
        config: &IcpeConfig,
        on_event: impl FnMut(PipelineEvent) + Send + 'static,
    ) -> LivePipeline {
        let metrics = PipelineMetrics::new();
        let (input, records) = ingest_channel::<GpsRecord>(config.runtime.channel_capacity);
        let driver_config = config.clone();
        let driver_metrics = metrics.clone();
        let driver = std::thread::Builder::new()
            .name("icpe-driver".into())
            .spawn(move || drive(driver_config, records, driver_metrics, on_event))
            .expect("failed to spawn pipeline driver thread");
        LivePipeline {
            input: Some(RecordSender { inner: input }),
            driver: Some(driver),
            metrics,
        }
    }

    /// Runs the full dataflow over a (possibly out-of-order) stream of
    /// discretized GPS records, blocking until completion. Batch façade
    /// over [`IcpePipeline::launch`].
    pub fn run(config: &IcpeConfig, records: Vec<GpsRecord>) -> PipelineOutput {
        let collected: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&collected);
        let live = IcpePipeline::launch(config, move |event| {
            if let PipelineEvent::Pattern(p) = event {
                sink.lock().expect("pattern sink poisoned").push(p);
            }
        });
        for record in records {
            if live.push(record).is_err() {
                break; // pipeline died; finish() will propagate the panic
            }
        }
        let metrics = live.finish();
        let patterns = std::mem::take(&mut *collected.lock().expect("pattern sink poisoned"));
        PipelineOutput { patterns, metrics }
    }
}

/// Driver-thread body of a launched pipeline: builds the dataflow with a
/// channel source and drains it into the event callback.
fn drive(
    config: IcpeConfig,
    records: crossbeam::channel::Receiver<GpsRecord>,
    metrics: PipelineMetrics,
    mut on_event: impl FnMut(PipelineEvent) + Send + 'static,
) {
    let n = config.parallelism;
    let aligner_config = config.aligner;
    let aligner_metrics = metrics.clone();

    let source = Stream::from_channel(config.runtime, records);
    let snapshots = source.apply("align", 1, Exchange::Rebalance, move |_| {
        AlignOperator::with_metrics(aligner_config, aligner_metrics.clone())
    });
    let partitions = cluster_stages(snapshots, &config, &metrics);
    let engine_config = config.engine_config();
    let enumerator_kind = config.enumerator;
    let outputs = partitions.apply(
        "enumerate",
        n,
        Exchange::per_record(|msg: &PartMsg| match msg {
            PartMsg::Part { partition, .. } => Routing::Key(hash_id(partition.owner)),
            PartMsg::Tick(_) => Routing::Broadcast,
        }),
        move |_| EnumerateOp::new(enumerator_kind, engine_config),
    );

    let mut done_counts: HashMap<u32, usize> = HashMap::new();
    outputs.for_each(|msg| match msg {
        OutMsg::Pattern(p) => on_event(PipelineEvent::Pattern(p)),
        OutMsg::Done(t) => {
            let c = done_counts.entry(t).or_insert(0);
            *c += 1;
            if *c == n {
                metrics.mark_done(t);
                on_event(PipelineEvent::SnapshotSealed { time: t });
            }
        }
    });
}

fn hash_id(id: ObjectId) -> u64 {
    let mut h = DefaultHasher::new();
    id.hash(&mut h);
    h.finish()
}

fn hash_key(key: GridKey) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Builds the clustering stages for the configured method, producing the
/// keyed partition stream consumed by enumeration.
fn cluster_stages(
    snapshots: Stream<Snapshot>,
    config: &IcpeConfig,
    metrics: &PipelineMetrics,
) -> Stream<PartMsg> {
    let n = config.parallelism;
    let m = config.constraints.m();
    let dbscan = config.dbscan;
    let metric = config.metric;
    let lg = config.lg;
    match config.clusterer {
        ClustererKind::Rjc | ClustererKind::Srj => {
            let full_replication = config.clusterer == ClustererKind::Srj;
            let build_then_query = full_replication;
            let m0 = metrics.clone();
            let grid_objects =
                snapshots.apply("allocate", 1, Exchange::Rebalance, move |_| AllocateOp {
                    grid: Grid::new(lg),
                    eps: dbscan.eps,
                    full_replication,
                    metrics: m0.clone(),
                });
            let pairs = grid_objects.apply(
                "grid-query",
                n,
                Exchange::per_record(|msg: &ClusterMsg| match msg {
                    ClusterMsg::Obj(o) => Routing::Key(hash_key(o.key)),
                    ClusterMsg::Tick(_) => Routing::Broadcast,
                }),
                move |_| QueryOp::new(dbscan.eps, metric, build_then_query),
            );
            pairs.apply("sync-dbscan", 1, Exchange::Rebalance, move |_| {
                SyncDbscanOp {
                    upstream: n,
                    m,
                    dbscan,
                    pending: BTreeMap::new(),
                }
            })
        }
        ClustererKind::Gdc => {
            let m0 = metrics.clone();
            snapshots.apply("gdc-cluster", 1, Exchange::Rebalance, move |_| GdcOp {
                clusterer: GdcClusterer::new(dbscan, metric),
                m,
                metrics: m0.clone(),
            })
        }
    }
}

// ---- messages --------------------------------------------------------------

/// GridAllocate → GridQuery.
#[derive(Debug, Clone)]
enum ClusterMsg {
    Obj(icpe_cluster::GridObject),
    /// Snapshot boundary: all objects of this time have been emitted.
    Tick(u32),
}

/// GridQuery → GridSync.
#[derive(Debug, Clone)]
enum PairMsg {
    Pairs(u32, Vec<NeighborPair>),
    Tick(u32),
}

/// GridSync/DBSCAN → Enumerate.
#[derive(Debug, Clone)]
pub(crate) enum PartMsg {
    Part { time: u32, partition: Partition },
    Tick(u32),
}

/// Enumerate → Sink.
#[derive(Debug, Clone)]
enum OutMsg {
    Pattern(Pattern),
    Done(u32),
}

// ---- operators -------------------------------------------------------------

/// GridAllocate (Algorithm 1) as a pipeline operator; also the latency
/// ingest point.
struct AllocateOp {
    grid: Grid,
    eps: f64,
    full_replication: bool,
    metrics: PipelineMetrics,
}

impl Operator<Snapshot, ClusterMsg> for AllocateOp {
    fn process(&mut self, snapshot: Snapshot, out: &mut Collector<ClusterMsg>) {
        self.metrics.mark_ingest(snapshot.time.0);
        let mut buf = Vec::new();
        for e in &snapshot.entries {
            allocate_one(
                e.id,
                e.location,
                snapshot.time,
                &self.grid,
                self.eps,
                self.full_replication,
                &mut buf,
            );
        }
        out.emit_all(buf.into_iter().map(ClusterMsg::Obj));
        out.emit(ClusterMsg::Tick(snapshot.time.0));
    }
}

/// GridQuery (Algorithm 2) as a keyed operator: one subtask owns many cells;
/// objects buffer per (time, cell) and the range queries run at the
/// snapshot-boundary tick.
struct QueryOp {
    eps: f64,
    metric: DistanceMetric,
    build_then_query: bool,
    buffers: BTreeMap<u32, HashMap<GridKey, Vec<icpe_cluster::GridObject>>>,
}

impl QueryOp {
    fn new(eps: f64, metric: DistanceMetric, build_then_query: bool) -> Self {
        QueryOp {
            eps,
            metric,
            build_then_query,
            buffers: BTreeMap::new(),
        }
    }

    fn flush_time(&mut self, t: u32, out: &mut Collector<PairMsg>) {
        let mut pairs = Vec::new();
        if let Some(cells) = self.buffers.remove(&t) {
            for (_, objects) in cells {
                if self.build_then_query {
                    // SRJ: build the complete local index, then query every
                    // object against it.
                    let mut items: Vec<(icpe_types::Point, ObjectId)> = objects
                        .iter()
                        .filter(|o| !o.is_query)
                        .map(|o| (o.location, o.id))
                        .collect();
                    let tree = RTree::bulk_load_with_max_entries(16, &mut items);
                    let mut hits = Vec::new();
                    for o in &objects {
                        hits.clear();
                        tree.query_within(&o.location, self.eps, self.metric, &mut hits);
                        for (_, &other) in &hits {
                            if other != o.id {
                                pairs.push(icpe_cluster::query::canonical(o.id, other));
                            }
                        }
                    }
                } else {
                    // RJC: Lemma-2 interleaved query-then-insert.
                    let mut engine = CellQueryEngine::new(self.eps, self.metric);
                    engine.run_cell(&objects, &mut pairs);
                }
            }
        }
        out.emit(PairMsg::Pairs(t, pairs));
        out.emit(PairMsg::Tick(t));
    }
}

impl Operator<ClusterMsg, PairMsg> for QueryOp {
    fn process(&mut self, msg: ClusterMsg, out: &mut Collector<PairMsg>) {
        match msg {
            ClusterMsg::Obj(o) => {
                self.buffers
                    .entry(o.time.0)
                    .or_default()
                    .entry(o.key)
                    .or_default()
                    .push(o);
            }
            ClusterMsg::Tick(t) => self.flush_time(t, out),
        }
    }

    fn finish(&mut self, out: &mut Collector<PairMsg>) {
        let times: Vec<u32> = self.buffers.keys().copied().collect();
        for t in times {
            self.flush_time(t, out);
        }
    }
}

/// GridSync + DBSCAN + id-based partitioning, single subtask (as in the
/// paper: the collection step is centralized and DBSCAN is O(pairs)).
struct SyncDbscanOp {
    upstream: usize,
    m: usize,
    dbscan: DbscanParams,
    pending: BTreeMap<u32, (PairCollector, usize)>,
}

impl Operator<PairMsg, PartMsg> for SyncDbscanOp {
    fn process(&mut self, msg: PairMsg, out: &mut Collector<PartMsg>) {
        match msg {
            PairMsg::Pairs(t, pairs) => {
                let entry = self.pending.entry(t).or_default();
                entry.0.extend(pairs);
            }
            PairMsg::Tick(t) => {
                let entry = self.pending.entry(t).or_default();
                entry.1 += 1;
                if entry.1 == self.upstream {
                    let (collector, _) = self.pending.remove(&t).unwrap();
                    let pairs = collector.into_pairs();
                    let mut objects: Vec<ObjectId> =
                        pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
                    objects.sort_unstable();
                    objects.dedup();
                    let outcome = dbscan_from_pairs(Timestamp(t), &objects, &pairs, &self.dbscan);
                    for partition in id_partitions(&outcome.snapshot, self.m) {
                        out.emit(PartMsg::Part { time: t, partition });
                    }
                    out.emit(PartMsg::Tick(t));
                }
            }
        }
    }
}

/// GDC (centralized) clustering straight from snapshots to partitions.
struct GdcOp {
    clusterer: GdcClusterer,
    m: usize,
    metrics: PipelineMetrics,
}

impl Operator<Snapshot, PartMsg> for GdcOp {
    fn process(&mut self, snapshot: Snapshot, out: &mut Collector<PartMsg>) {
        self.metrics.mark_ingest(snapshot.time.0);
        let t = snapshot.time.0;
        let clusters: ClusterSnapshot = self.clusterer.cluster(&snapshot);
        for partition in id_partitions(&clusters, self.m) {
            out.emit(PartMsg::Part { time: t, partition });
        }
        out.emit(PartMsg::Tick(t));
    }
}

/// One enumeration subtask: owns the engines' state for the owner ids routed
/// to it, advances time on broadcast ticks.
struct EnumerateOp {
    engine: Box<dyn PatternEngine + Send>,
    pending: HashMap<u32, Vec<Partition>>,
}

impl EnumerateOp {
    fn new(kind: EnumeratorKind, config: icpe_pattern::EngineConfig) -> Self {
        let engine: Box<dyn PatternEngine + Send> = match kind {
            EnumeratorKind::Baseline => Box::new(BaselineEngine::new(config)),
            EnumeratorKind::Fba => Box::new(FbaEngine::new(config)),
            EnumeratorKind::Vba => Box::new(VbaEngine::new(config)),
        };
        EnumerateOp {
            engine,
            pending: HashMap::new(),
        }
    }
}

impl Operator<PartMsg, OutMsg> for EnumerateOp {
    fn process(&mut self, msg: PartMsg, out: &mut Collector<OutMsg>) {
        match msg {
            PartMsg::Part { time, partition } => {
                self.pending.entry(time).or_default().push(partition);
            }
            PartMsg::Tick(t) => {
                let parts = self.pending.remove(&t).unwrap_or_default();
                let patterns = self.engine.push_partitions(Timestamp(t), parts);
                out.emit_all(patterns.into_iter().map(OutMsg::Pattern));
                out.emit(OutMsg::Done(t));
            }
        }
    }

    fn finish(&mut self, out: &mut Collector<OutMsg>) {
        let patterns = self.engine.finish();
        out.emit_all(patterns.into_iter().map(OutMsg::Pattern));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_pattern::unique_object_sets;
    use icpe_types::{Constraints, Point};

    /// Three co-walking objects + two wanderers, as pre-discretized records.
    fn walking_records(ticks: u32) -> Vec<GpsRecord> {
        let mut out = Vec::new();
        for t in 0..ticks {
            let base = t as f64 * 0.5;
            let last = if t == 0 { None } else { Some(Timestamp(t - 1)) };
            for (id, p) in [
                (1u32, Point::new(base, 0.0)),
                (2, Point::new(base + 0.3, 0.3)),
                (3, Point::new(base + 0.6, 0.0)),
                (8, Point::new(100.0 + base, 50.0)),
                (9, Point::new(-100.0, 50.0 - base)),
            ] {
                out.push(GpsRecord::new(ObjectId(id), p, Timestamp(t), last));
            }
        }
        out
    }

    fn config(n: usize, enumerator: EnumeratorKind) -> IcpeConfig {
        IcpeConfig::builder()
            .constraints(Constraints::new(3, 4, 2, 2).unwrap())
            .epsilon(1.0)
            .min_pts(3)
            .parallelism(n)
            .enumerator(enumerator)
            .build()
            .unwrap()
    }

    #[test]
    fn pipeline_detects_the_walking_group() {
        for kind in [
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
            EnumeratorKind::Baseline,
        ] {
            let out = IcpePipeline::run(&config(3, kind), walking_records(10));
            let sets = unique_object_sets(&out.patterns);
            assert!(
                sets.contains(&vec![ObjectId(1), ObjectId(2), ObjectId(3)]),
                "{kind:?}: {sets:?}"
            );
            assert_eq!(out.metrics.snapshots, 10);
        }
    }

    #[test]
    fn pipeline_matches_sync_engine() {
        let cfg = config(4, EnumeratorKind::Fba);
        let out = IcpePipeline::run(&cfg, walking_records(12));
        let pipeline_sets = unique_object_sets(&out.patterns);

        let mut engine = crate::engine::IcpeEngine::new(cfg);
        let mut patterns = Vec::new();
        for t in 0..12u32 {
            let base = t as f64 * 0.5;
            let snap = Snapshot::from_pairs(
                Timestamp(t),
                [
                    (ObjectId(1), Point::new(base, 0.0)),
                    (ObjectId(2), Point::new(base + 0.3, 0.3)),
                    (ObjectId(3), Point::new(base + 0.6, 0.0)),
                    (ObjectId(8), Point::new(100.0 + base, 50.0)),
                    (ObjectId(9), Point::new(-100.0, 50.0 - base)),
                ],
            );
            patterns.extend(engine.push_snapshot(snap));
        }
        patterns.extend(engine.finish());
        assert_eq!(pipeline_sets, unique_object_sets(&patterns));
    }

    #[test]
    fn pipeline_parallelism_does_not_change_results() {
        let base = unique_object_sets(
            &IcpePipeline::run(&config(1, EnumeratorKind::Fba), walking_records(10)).patterns,
        );
        for n in [2, 4, 8] {
            let out = IcpePipeline::run(&config(n, EnumeratorKind::Fba), walking_records(10));
            assert_eq!(unique_object_sets(&out.patterns), base, "N = {n}");
        }
    }

    #[test]
    fn pipeline_srj_and_gdc_agree_with_rjc() {
        let mk = |kind: ClustererKind| {
            let cfg = IcpeConfig::builder()
                .constraints(Constraints::new(3, 4, 2, 2).unwrap())
                .epsilon(1.0)
                .min_pts(3)
                .parallelism(2)
                .clusterer(kind)
                .build()
                .unwrap();
            unique_object_sets(&IcpePipeline::run(&cfg, walking_records(10)).patterns)
        };
        let rjc = mk(ClustererKind::Rjc);
        assert_eq!(mk(ClustererKind::Srj), rjc);
        assert_eq!(mk(ClustererKind::Gdc), rjc);
    }

    #[test]
    fn pipeline_handles_out_of_order_records() {
        // Swap some records around within a small window; the aligner must
        // still produce identical results.
        let mut records = walking_records(10);
        let n = records.len();
        for i in (0..n - 3).step_by(3) {
            records.swap(i, i + 3);
        }
        let out = IcpePipeline::run(&config(2, EnumeratorKind::Fba), records);
        let sets = unique_object_sets(&out.patterns);
        assert!(sets.contains(&vec![ObjectId(1), ObjectId(2), ObjectId(3)]));
    }

    #[test]
    fn empty_input_produces_nothing() {
        let out = IcpePipeline::run(&config(2, EnumeratorKind::Fba), Vec::new());
        assert!(out.patterns.is_empty());
        assert_eq!(out.metrics.snapshots, 0);
    }

    #[test]
    fn live_launch_delivers_patterns_and_seal_events() {
        let events: Arc<Mutex<Vec<PipelineEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let live = IcpePipeline::launch(&config(3, EnumeratorKind::Fba), move |e| {
            sink.lock().unwrap().push(e);
        });
        for r in walking_records(10) {
            live.push(r).unwrap();
        }
        let report = live.finish();
        assert_eq!(report.snapshots, 10);

        let events = events.lock().unwrap();
        let sealed: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                PipelineEvent::SnapshotSealed { time } => Some(*time),
                _ => None,
            })
            .collect();
        assert_eq!(sealed, (0..10).collect::<Vec<_>>(), "sealed in order");
        let patterns: Vec<Pattern> = events
            .iter()
            .filter_map(|e| match e {
                PipelineEvent::Pattern(p) => Some(p.clone()),
                _ => None,
            })
            .collect();
        let sets = unique_object_sets(&patterns);
        assert!(sets.contains(&vec![ObjectId(1), ObjectId(2), ObjectId(3)]));
    }

    #[test]
    fn live_launch_supports_many_producers() {
        let live = IcpePipeline::launch(&config(2, EnumeratorKind::Fba), |_| {});
        let records = walking_records(12);
        // Interleave the stream across four concurrent producers, keyed so
        // each object's records stay with one producer (preserving per-id
        // order, as TCP connections do).
        let mut handles = Vec::new();
        for p in 0..4u32 {
            let sender = live.sender();
            let my_records: Vec<GpsRecord> = records
                .iter()
                .filter(|r| r.id.0 % 4 == p)
                .copied()
                .collect();
            handles.push(std::thread::spawn(move || {
                for r in my_records {
                    sender.push(r).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let report = live.finish();
        assert_eq!(report.snapshots, 12);
    }

    #[test]
    fn live_progress_gauges_advance() {
        let live = IcpePipeline::launch(&config(1, EnumeratorKind::Fba), |_| {});
        for r in walking_records(8) {
            live.push(r).unwrap();
        }
        let before = live.progress();
        let report = live.finish();
        assert_eq!(report.snapshots, 8);
        // After finish, everything ingested has sealed.
        assert!(before.max_ingested.unwrap_or(0) <= 7);
    }
}
