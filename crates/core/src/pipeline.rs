//! The distributed streaming deployment (the paper's Flink job, Fig. 5).
//!
//! ```text
//! Source(1) → AlignRoute(1) → AlignShard+GridAllocate(S, keyBy id)
//!     → SnapMerge(tree, fanin f)         ┐
//!     → GridQuery(N, keyBy grid cell)    │  keyed data,
//!     → GridSync(N, keyBy owner id)      │  broadcast per-snapshot ticks
//!     → SyncMerge+DBSCAN(tree, fanin f)  │
//!     → Enumerate(N, keyBy owner id)     ┘
//!     → Sink(1)
//! ```
//!
//! Snapshot boundaries travel as broadcast *ticks* (the runtime equivalent
//! of Flink punctuation/watermarks): a keyed subtask knows a snapshot's
//! contribution is complete when it has seen the boundary tick from each of
//! its upstream producers. Latency is measured from a snapshot leaving the
//! snapshot-merge finalizer until all enumeration subtasks have reported
//! its tick done; throughput is completed snapshots per second — the two
//! measures of §7.
//!
//! ## The sharded aligner head
//!
//! §4 time alignment decomposes by trajectory id — every chain is
//! per-trajectory state — but the *seal decision* is global: a record is
//! late iff its time is below the min-over-all-chains frontier at the
//! moment it enters the stream. So the head splits into a thin serial
//! **frontier router** (`align-route`) holding the chains partitioned per
//! shard (seal = min over shard frontiers; it buffers no rows) and `S`
//! **aligner shards** (`align-shard`, keyed by `hash_id(id) % S`) holding
//! the buffered snapshot rows of their trajectories. The router forwards
//! each kept record to its shard and broadcasts `Seal` punctuation as
//! times become sealable; each shard then runs GridAllocate over its rows
//! — cell assignment is per-record stateless, so the allocate work rides
//! the shards for free — and emits a partial object set per sealed time.
//! Partials reduce through a `snap-merge` aggregation tree (same fanin as
//! the GridSync tree, ticks aligned at every level) to one finalizer that
//! runs the load balancer and releases the window to the keyed grid
//! exchange. Per-record chain work, row buffering, and cell assignment all
//! scale with `S`; only the frontier bookkeeping (a hash+compare per
//! record) stays serial. The GDC baseline keeps the serial `align` head —
//! it has no grid stage to fuse into.
//!
//! Two entry points are provided:
//!
//! * [`IcpePipeline::run`] — batch: feed a pre-built record vector, block
//!   until completion, collect everything (the evaluation-harness form);
//! * [`IcpePipeline::launch`] — live: the dataflow runs on background
//!   threads, records are **pushed** through a bounded channel as they
//!   arrive ([`LivePipeline::push`]), and results are **delivered to a sink
//!   callback** ([`PipelineEvent`]) the moment they are produced. This is
//!   the deployment form the `icpe-serve` network layer builds on; the
//!   channel bound gives end-to-end backpressure from clustering all the
//!   way back to the TCP socket.
//!
//! ## Checkpointing (the recovery story)
//!
//! The job is stateful: the aligner's chains and buffered rows and the
//! enumeration engines' open windows are exactly what a crash would
//! forget. [`LivePipeline::checkpoint`] captures them *consistently*
//! without stopping the world, Flink/Chandy–Lamport style: a **barrier**
//! message is enqueued on the ingest channel behind every record pushed so
//! far and flows through the dataflow along the same FIFO channels as
//! data —
//!
//! * the frontier router snapshots its chains + counters into the token
//!   and forwards the barrier; each aligner shard deposits its buffered
//!   rows as a buffer-only piece (the sink later merges router + shard
//!   pieces into one canonical, deployment-independent aligner section —
//!   restore may therefore use a different shard count);
//! * the clustering stages forward it (their per-snapshot buffers are
//!   provably empty at a barrier: the barrier trails the boundary tick of
//!   every sealed snapshot, and ticks flush those buffers);
//! * each enumeration subtask snapshots its engine at the barrier — by
//!   which point it has processed exactly the snapshots the aligner sealed
//!   before the barrier, nothing more — and emits the piece to the sink;
//! * the sink merges the `N` engine pieces with the aligner state into one
//!   deployment-independent [`PipelineCheckpoint`] and fulfils the request.
//!
//! The cut is exact: `records_ingested` counts the records consumed before
//! the barrier, so replaying the input from that offset into
//! [`IcpePipeline::launch_from`] resumes the run as if it never stopped.
//! Restore re-shards engine state by owner hash, so the restored deployment
//! may use a different parallelism than the one that wrote the checkpoint.
//!
//! ## Adaptive cell routing (hotspot-aware repartitioning)
//!
//! With [`rebalance`](crate::IcpeConfigBuilder::rebalance) set, the
//! GridQuery exchange routes through a shared, epoch-versioned
//! [`RoutingTable`] instead of a fixed `hash(cell) % N`:
//!
//! * every GridQuery subtask accounts its per-cell load (buffered objects
//!   plus produced pairs) into a shared [`LoadTracker`] as it flushes
//!   each window;
//! * the (single) snapshot-merge finalizer — the one subtask upstream of
//!   the keyed exchange — runs the [`LoadBalancer`] at each snapshot
//!   boundary, **before** emitting the snapshot's objects, and, when a hot
//!   placement is detected, installs a new routing epoch into the table;
//! * because the swap happens strictly between the boundary tick of
//!   window `t−1` and the first object of window `t`, and ticks flush
//!   every per-cell buffer, a window's cell group is always routed under
//!   exactly one epoch: migrations can never split an in-flight window
//!   across subtasks, which is why adaptive and static routing provably
//!   seal identical pattern multisets.
//!
//! The learned placement (epoch, explicit assignments, decayed cell
//! loads) rides in the checkpoint's `routing` section, so a restored
//! deployment resumes on the checkpointed epoch instead of re-learning
//! every hotspot.

use crate::config::{ClustererKind, EnumeratorKind, IcpeConfig, Supervision};
use icpe_cluster::allocate::allocate_one;
use icpe_cluster::balance::{imbalance, CellLoad, LoadBalancer, LoadTracker};
use icpe_cluster::query::NeighborPair;
use icpe_cluster::sync::{PairCollector, SyncStats, SyncStatus};
use icpe_cluster::{
    dbscan_from_pairs, refine_expand, CellQueryEngine, GdcClusterer, SnapshotClusterer,
};
use icpe_index::{Grid, GridKey, RTree};
use icpe_pattern::partition::Partition;
use icpe_pattern::{id_partitions, BaselineEngine, FbaEngine, PatternEngine, VbaEngine};
use icpe_runtime::{
    ingest_channel, AlignStats, AlignerStatus, Collector, Disconnected, Exchange, MetricRegistry,
    MetricsReport, ObsEventKind, Operator, PipelineMetrics, Routed, Routing, RoutingStatus,
    RoutingTable, ShardedAligner, StageFailure, Stream, StreamProgress, TimeAligner, TreeSlot,
};
use icpe_types::shard::{hash_id, stable_hash, subtask_for};
use icpe_types::{
    AlignerCheckpoint, CheckpointError, ClusterSnapshot, DbscanParams, DistanceMetric,
    EngineCheckpoint, GpsRecord, ObjectId, ObsCheckpoint, Pattern, PipelineCheckpoint,
    ProgressCheckpoint, RoutingCheckpoint, Snapshot, SyncCheckpoint, SyncWindowCheckpoint,
    Timestamp, CHECKPOINT_VERSION,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// What a pipeline run produces.
#[derive(Debug)]
pub struct PipelineOutput {
    /// Every reported pattern (across all windows; dedupe with
    /// [`icpe_pattern::unique_object_sets`] if only the sets matter).
    pub patterns: Vec<Pattern>,
    /// Latency/throughput summary.
    pub metrics: MetricsReport,
}

/// An output of the live pipeline, delivered to the sink callback the
/// moment the dataflow produces it.
#[derive(Debug, Clone)]
pub enum PipelineEvent {
    /// A co-movement pattern became reportable.
    Pattern(Pattern),
    /// Every enumeration subtask finished snapshot `time`. Patterns whose
    /// enumeration window closed by `time` have been delivered; windows
    /// still open (and the end-of-stream flush) may deliver further
    /// patterns later, including some whose witnessing sequence ends at or
    /// before `time`.
    SnapshotSealed {
        /// The completed snapshot's discretized time.
        time: u32,
    },
}

/// What travels on the ingest channel: data (single records or whole
/// ingest-edge batches), or a checkpoint barrier.
#[derive(Debug, Clone)]
enum InputMsg {
    Record(GpsRecord),
    /// A pre-assembled micro-batch ([`RecordSender::push_batch`]): one
    /// channel operation for many records. The align stage consumes it
    /// record-by-record, so the checkpoint cut's `records_ingested` count
    /// stays record-granular.
    Batch(Vec<GpsRecord>),
    Barrier(Arc<BarrierRequest>),
}

/// A pending checkpoint request, created by [`RecordSender::checkpoint`]
/// and fulfilled by the sink once every engine piece has arrived.
#[derive(Debug)]
struct BarrierRequest {
    seq: u64,
    reply: crossbeam::channel::Sender<PipelineCheckpoint>,
}

/// The barrier as it travels *after* the align stage: the request plus the
/// state captured at the cut so far.
#[derive(Debug)]
pub(crate) struct BarrierToken {
    request: Arc<BarrierRequest>,
    /// The aligner state captured at the ingest point: under the sharded
    /// head this is the frontier router's piece (chains + counters + clock
    /// fields, no rows); under the GDC serial head it is the complete
    /// aligner checkpoint.
    aligner: AlignerCheckpoint,
    records_ingested: u64,
    /// Filled by the aligner shards as the barrier passes them: one
    /// buffer-only piece per shard (their unsealed rows). The sink merges
    /// these with the router's piece into the canonical aligner section.
    /// Stays empty under the GDC serial head.
    aligner_shards: Mutex<Vec<AlignerCheckpoint>>,
    /// Filled by the (single) allocate subtask as the barrier passes it:
    /// the adaptive-routing state at the cut. Stays `None` under static
    /// routing or the GDC clusterer.
    routing: Mutex<Option<RoutingCheckpoint>>,
    /// Filled as the barrier aligns through the sharded sync path: one
    /// piece per sync shard (dedup counters + pending pairs) plus one
    /// from the tree finalizer (window-seal counter). Merged by the sink;
    /// stays empty under GDC.
    sync: Mutex<Vec<SyncCheckpoint>>,
}

/// A cloneable handle for pushing records into a running [`LivePipeline`]
/// (one per producer; many producers may feed one pipeline).
#[derive(Debug, Clone)]
pub struct RecordSender {
    inner: crossbeam::channel::Sender<InputMsg>,
    /// Checkpoint sequence numbers, shared by every handle of one pipeline.
    ckpt_seq: Arc<AtomicU64>,
}

impl RecordSender {
    /// Pushes one record, blocking while the pipeline's ingest buffer is
    /// full (backpressure). Fails once the pipeline has shut down.
    pub fn push(&self, record: GpsRecord) -> Result<(), Disconnected> {
        self.inner
            .send(InputMsg::Record(record))
            .map_err(|_| Disconnected)
    }

    /// Pushes a whole micro-batch in one channel operation — the vectorized
    /// ingest edge (`icpe-serve` stamps and forwards per-connection batches
    /// through this). Order within the batch is preserved; a batch is
    /// equivalent to pushing its records one by one, only cheaper. Blocks
    /// under backpressure; fails once the pipeline has shut down.
    pub fn push_batch(&self, records: Vec<GpsRecord>) -> Result<(), Disconnected> {
        if records.is_empty() {
            return Ok(());
        }
        self.inner
            .send(InputMsg::Batch(records))
            .map_err(|_| Disconnected)
    }

    /// Requests a consistent checkpoint and blocks until the barrier has
    /// traversed the dataflow (behind every record pushed before this
    /// call) and the assembled [`PipelineCheckpoint`] comes back. Fails
    /// once the pipeline has shut down.
    pub fn checkpoint(&self) -> Result<PipelineCheckpoint, Disconnected> {
        let (reply, rx) = crossbeam::channel::bounded(1);
        let seq = self.ckpt_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner
            .send(InputMsg::Barrier(Arc::new(BarrierRequest { seq, reply })))
            .map_err(|_| Disconnected)?;
        rx.recv().map_err(|_| Disconnected)
    }
}

/// A live view of the grid stage's routing layer: the swappable
/// cell→subtask table plus the shared load accounting. Cloneable and
/// independent of the [`LivePipeline`]'s lifetime, so status endpoints and
/// benches can keep reading after [`LivePipeline::finish`].
#[derive(Debug, Clone)]
pub struct RoutingHandle {
    table: Arc<RoutingTable>,
    tracker: Arc<LoadTracker>,
}

impl RoutingHandle {
    /// The current routing status: epoch, table size, cumulative
    /// migrations, and the per-subtask load split of the most recently
    /// completed window.
    pub fn status(&self) -> RoutingStatus {
        let mut status = self.table.status();
        if let Some((_, loads)) = self.tracker.last_sealed() {
            let total: u64 = loads.iter().sum();
            status.mean_subtask_load = total as f64 / loads.len().max(1) as f64;
            status.max_subtask_load = loads.iter().copied().max().unwrap_or(0) as f64;
        }
        status
    }

    /// Per-window, per-subtask GridQuery loads, ascending by window time —
    /// the series the skew bench computes p95 imbalance from.
    pub fn window_loads(&self) -> Vec<(u32, Vec<u64>)> {
        self.tracker.sealed_windows()
    }

    /// Per-window per-cell loads of sealed windows (hindsight analyses;
    /// see [`LoadTracker::sealed_cell_windows`]).
    pub fn sealed_cell_windows(&self) -> Vec<(u32, Vec<(GridKey, u64)>)> {
        self.tracker.sealed_cell_windows()
    }

    /// `max/mean` subtask load per completed window.
    pub fn imbalance_series(&self) -> Vec<(u32, f64)> {
        self.tracker
            .sealed_windows()
            .into_iter()
            .map(|(t, loads)| (t, imbalance(&loads)))
            .collect()
    }
}

/// A live view of the sharded GridSync merge path: cumulative dedup/seal
/// counters and the per-shard load split of the last sealed window.
/// Cloneable and independent of the [`LivePipeline`]'s lifetime, like
/// [`RoutingHandle`].
#[derive(Debug, Clone)]
pub struct SyncHandle {
    stats: Arc<SyncStats>,
}

impl SyncHandle {
    /// The current sync gauges.
    pub fn status(&self) -> SyncStatus {
        self.stats.status()
    }
}

/// A live view of the sharded aligner head: chain counts, per-shard
/// frontier spread, the sealed frontier, and the late-drop counter.
/// Cloneable and independent of the [`LivePipeline`]'s lifetime, like
/// [`SyncHandle`].
#[derive(Debug, Clone)]
pub struct AlignHandle {
    stats: Arc<AlignStats>,
}

impl AlignHandle {
    /// The current aligner-head gauges.
    pub fn status(&self) -> AlignerStatus {
        self.stats.status()
    }
}

/// The supervised pipeline's health, as a state machine:
///
/// ```text
/// Healthy ──stage failure──► Recovering ──relaunch + replay ok──► Healthy
///    ▲                           │  ▲                             (or Degraded once
///    └───────────────────────────┘  └──another failure────┐        > half the restart
///                                                         │        budget is spent)
///                            restart budget exhausted ──► Failed (terminal)
/// ```
///
/// Unsupervised pipelines always report `Healthy`; their failure mode is
/// the pre-existing panic out of [`LivePipeline::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Running normally.
    Healthy,
    /// A stage died; the supervisor is relaunching from the latest cut.
    Recovering,
    /// Recovered, but more than half the restart budget is spent.
    Degraded,
    /// Restart budget exhausted; the pipeline is down for good (pushes are
    /// discarded, checkpoints fail — nothing blocks).
    Failed,
}

impl HealthState {
    /// Lowercase wire name (`STATUS`'s `health=` value).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Recovering => "recovering",
            HealthState::Degraded => "degraded",
            HealthState::Failed => "failed",
        }
    }
}

/// A cloneable, lock-free view of a pipeline's [`HealthState`] — stays
/// readable after [`LivePipeline::finish`], like the other handles.
#[derive(Debug, Clone, Default)]
pub struct HealthHandle {
    cell: Arc<AtomicU8>,
}

impl HealthHandle {
    /// The current state.
    pub fn get(&self) -> HealthState {
        match self.cell.load(Ordering::Relaxed) {
            1 => HealthState::Recovering,
            2 => HealthState::Degraded,
            3 => HealthState::Failed,
            _ => HealthState::Healthy,
        }
    }

    fn set(&self, state: HealthState) {
        let v = match state {
            HealthState::Healthy => 0,
            HealthState::Recovering => 1,
            HealthState::Degraded => 2,
            HealthState::Failed => 3,
        };
        self.cell.store(v, Ordering::Relaxed);
    }
}

/// A running streaming deployment (see [`IcpePipeline::launch`]).
///
/// Dropping the handle without calling [`LivePipeline::finish`] detaches
/// the dataflow: it keeps draining already-pushed records on its background
/// threads and winds down at end of stream.
#[derive(Debug)]
pub struct LivePipeline {
    input: Option<RecordSender>,
    driver: Option<JoinHandle<()>>,
    metrics: PipelineMetrics,
    routing: Option<RoutingHandle>,
    sync: Option<SyncHandle>,
    align: Option<AlignHandle>,
    obs: MetricRegistry,
    health: HealthHandle,
}

impl LivePipeline {
    /// A fresh producer handle. The stream ends only when *every* producer
    /// handle (and the pipeline's own, released by
    /// [`LivePipeline::finish`]) has been dropped.
    pub fn sender(&self) -> RecordSender {
        self.input
            .clone()
            .expect("LivePipeline::sender called after finish")
    }

    /// Pushes one record through the pipeline's own producer handle.
    pub fn push(&self, record: GpsRecord) -> Result<(), Disconnected> {
        self.input
            .as_ref()
            .expect("LivePipeline::push called after finish")
            .push(record)
    }

    /// Pushes a whole micro-batch through the pipeline's own producer
    /// handle (see [`RecordSender::push_batch`]).
    pub fn push_batch(&self, records: Vec<GpsRecord>) -> Result<(), Disconnected> {
        self.input
            .as_ref()
            .expect("LivePipeline::push_batch called after finish")
            .push_batch(records)
    }

    /// Takes a consistent checkpoint of the running pipeline (see the
    /// module docs): blocks until the barrier has flowed through every
    /// stage, typically well under the time the pipeline needs to drain
    /// its in-flight snapshots. Concurrent pushes are fine — the cut lands
    /// at whatever point the barrier enters the ingest channel, and the
    /// returned checkpoint's `records_ingested` names that point exactly.
    pub fn checkpoint(&self) -> Result<PipelineCheckpoint, Disconnected> {
        self.input
            .as_ref()
            .expect("LivePipeline::checkpoint called after finish")
            .checkpoint()
    }

    /// The shared latency/throughput recorder — readable while the
    /// pipeline runs (the serving layer's status endpoint polls this).
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// The per-stage/per-exchange metric registry and event journal —
    /// everything behind the serving layer's `METRICS` and `EVENTS`
    /// endpoints. Clone it to keep reading after [`LivePipeline::finish`].
    /// Empty (families never registered) when the pipeline was launched
    /// with [`instrument`](crate::IcpeConfigBuilder::instrument) off;
    /// journal events are emitted either way.
    pub fn obs(&self) -> &MetricRegistry {
        &self.obs
    }

    /// Live stream-position gauges (ingested vs. sealed frontier, lag,
    /// late-record count).
    pub fn progress(&self) -> StreamProgress {
        self.metrics.progress()
    }

    /// The grid stage's routing view (`None` for clusterers without a
    /// keyed grid stage, i.e. GDC). Clone it to keep reading load and
    /// epoch gauges after [`LivePipeline::finish`].
    pub fn routing(&self) -> Option<&RoutingHandle> {
        self.routing.as_ref()
    }

    /// Convenience: the current [`RoutingStatus`], when a grid stage runs.
    pub fn routing_status(&self) -> Option<RoutingStatus> {
        self.routing.as_ref().map(RoutingHandle::status)
    }

    /// The sharded GridSync merge path's gauge view (`None` for
    /// clusterers without a grid sync stage, i.e. GDC). Clone it to keep
    /// reading after [`LivePipeline::finish`].
    pub fn sync(&self) -> Option<&SyncHandle> {
        self.sync.as_ref()
    }

    /// Convenience: the current [`SyncStatus`], when a sync stage runs.
    pub fn sync_status(&self) -> Option<SyncStatus> {
        self.sync.as_ref().map(SyncHandle::status)
    }

    /// The sharded aligner head's gauge view (`None` under GDC, which
    /// keeps the serial head). Clone it to keep reading after
    /// [`LivePipeline::finish`].
    pub fn align(&self) -> Option<&AlignHandle> {
        self.align.as_ref()
    }

    /// Convenience: the current [`AlignerStatus`], when the sharded head
    /// runs.
    pub fn align_status(&self) -> Option<AlignerStatus> {
        self.align.as_ref().map(AlignHandle::status)
    }

    /// The pipeline's current [`HealthState`]. Always `Healthy` for an
    /// unsupervised launch.
    pub fn health(&self) -> HealthState {
        self.health.get()
    }

    /// A cloneable health view that stays readable after
    /// [`LivePipeline::finish`] (the serve tier's `STATUS` caches this).
    pub fn health_handle(&self) -> HealthHandle {
        self.health.clone()
    }

    /// Ends the stream (drops this handle's sender) and blocks until the
    /// dataflow drains; returns the final metrics. Producer handles from
    /// [`LivePipeline::sender`] keep the stream open until they drop too.
    ///
    /// Panics if a dataflow subtask panicked.
    pub fn finish(mut self) -> MetricsReport {
        self.input = None;
        if let Some(driver) = self.driver.take() {
            if let Err(payload) = driver.join() {
                std::panic::resume_unwind(payload);
            }
        }
        self.metrics.report()
    }
}

/// The distributed ICPE deployment.
pub struct IcpePipeline;

impl IcpePipeline {
    /// Launches the dataflow in live (push-based) mode: records enter
    /// through [`LivePipeline::push`] / [`RecordSender::push`] and every
    /// result is handed to `on_event` as soon as it exists. `on_event` runs
    /// on the pipeline's driver thread; keep it cheap or hand off to a
    /// queue (as `icpe-serve`'s fan-out hub does).
    pub fn launch(
        config: &IcpeConfig,
        on_event: impl FnMut(PipelineEvent) + Send + 'static,
    ) -> LivePipeline {
        match config.supervision.clone() {
            Some(policy) => Self::launch_supervised(config, policy, None, on_event),
            None => Self::launch_inner(config, ResumeState::fresh(config), on_event),
        }
    }

    /// Launches the dataflow resuming from a checkpoint: the aligner, the
    /// enumeration engines, and the progress gauges pick up exactly where
    /// the checkpoint cut them, and the producers are expected to replay
    /// the input stream from record `checkpoint.records_ingested` onward.
    /// The configuration must run the same engine kind the checkpoint
    /// holds; parallelism may differ (state re-shards by owner hash).
    pub fn launch_from(
        config: &IcpeConfig,
        checkpoint: &PipelineCheckpoint,
        on_event: impl FnMut(PipelineEvent) + Send + 'static,
    ) -> Result<LivePipeline, CheckpointError> {
        let resume = ResumeState::from_checkpoint(config, checkpoint)?;
        Ok(match config.supervision.clone() {
            Some(policy) => Self::launch_supervised(
                config,
                policy,
                Some((resume, checkpoint.clone())),
                on_event,
            ),
            None => Self::launch_inner(config, resume, on_event),
        })
    }

    fn launch_inner(
        config: &IcpeConfig,
        resume: ResumeState,
        on_event: impl FnMut(PipelineEvent) + Send + 'static,
    ) -> LivePipeline {
        let shared = SharedHandles::new(config);
        shared.reset_to(&resume);
        let ckpt_seq = Arc::new(AtomicU64::new(resume.next_seq.saturating_sub(1)));
        let (input, driver) = launch_generation(config, resume, &shared, None, None, on_event);
        LivePipeline {
            input: Some(RecordSender {
                inner: input,
                ckpt_seq,
            }),
            driver: Some(driver),
            metrics: shared.metrics,
            routing: shared.routing,
            sync: shared.sync,
            align: shared.align,
            obs: shared.obs,
            health: HealthHandle::default(),
        }
    }

    /// Launches the dataflow behind a supervisor thread: producers feed the
    /// supervisor, which relays into the current dataflow *generation*,
    /// buffers every record since the latest checkpoint cut, and — when a
    /// stage dies — tears the generation down, relaunches from that cut
    /// under the policy's exponential backoff, and replays the buffer. The
    /// shared observability handles (metrics, registry, routing, sync,
    /// align) survive generations, as does the event sink.
    fn launch_supervised(
        config: &IcpeConfig,
        policy: Supervision,
        start: Option<(ResumeState, PipelineCheckpoint)>,
        on_event: impl FnMut(PipelineEvent) + Send + 'static,
    ) -> LivePipeline {
        let shared = SharedHandles::new(config);
        let health = HealthHandle::default();
        let (resume, latest) = match start {
            Some((resume, ckpt)) => (resume, Some(ckpt)),
            None => (ResumeState::fresh(config), None),
        };
        shared.reset_to(&resume);
        let ckpt_seq = Arc::new(AtomicU64::new(resume.next_seq.saturating_sub(1)));
        let (outer_tx, outer_rx) = ingest_channel::<InputMsg>(config.runtime.channel_capacity);
        let supervisor = Supervisor {
            config: config.clone(),
            policy,
            shared: shared.clone(),
            health: health.clone(),
            ledger: Arc::new(Mutex::new(DeliveryLedger::default())),
            sink: Arc::new(Mutex::new(Box::new(on_event))),
            outer: outer_rx,
            ckpt_seq: Arc::clone(&ckpt_seq),
            latest,
            pending_cut: None,
            buffer: Vec::new(),
            restarts_used: 0,
            restarts_total: 0,
            recoveries_total: 0,
            recovery_nanos_total: 0,
            replayed_total: 0,
        };
        let driver = std::thread::Builder::new()
            .name("icpe-supervisor".into())
            .spawn(move || supervisor.run(resume))
            .expect("failed to spawn pipeline supervisor thread");
        LivePipeline {
            input: Some(RecordSender {
                inner: outer_tx,
                ckpt_seq,
            }),
            driver: Some(driver),
            metrics: shared.metrics,
            routing: shared.routing,
            sync: shared.sync,
            align: shared.align,
            obs: shared.obs,
            health,
        }
    }

    /// Runs the full dataflow over a (possibly out-of-order) stream of
    /// discretized GPS records, blocking until completion. Batch façade
    /// over [`IcpePipeline::launch`]; the input is chunked into ingest
    /// micro-batches of the configured batch size.
    pub fn run(config: &IcpeConfig, records: Vec<GpsRecord>) -> PipelineOutput {
        let collected: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&collected);
        let live = IcpePipeline::launch(config, move |event| {
            if let PipelineEvent::Pattern(p) = event {
                sink.lock().expect("pattern sink poisoned").push(p);
            }
        });
        let batch = config.runtime.batch_size.max(1);
        let mut iter = records.into_iter();
        loop {
            let chunk: Vec<GpsRecord> = iter.by_ref().take(batch).collect();
            if chunk.is_empty() {
                break;
            }
            if live.push_batch(chunk).is_err() {
                break; // pipeline died; finish() will propagate the panic
            }
        }
        let metrics = live.finish();
        let patterns = std::mem::take(&mut *collected.lock().expect("pattern sink poisoned"));
        PipelineOutput { patterns, metrics }
    }
}

// ---- supervision -----------------------------------------------------------

/// The observability surfaces that outlive a dataflow generation: the
/// supervisor resets them *to the recovery cut* before relaunching, so
/// cached handles (serve's `STATUS`/`METRICS`, benches) stay valid across
/// restarts instead of dangling or double-counting.
#[derive(Debug, Clone)]
struct SharedHandles {
    metrics: PipelineMetrics,
    obs: MetricRegistry,
    routing: Option<RoutingHandle>,
    sync: Option<SyncHandle>,
    align: Option<AlignHandle>,
}

impl SharedHandles {
    /// Fresh, empty handles for one deployment. The routing/sync/align
    /// surfaces exist whenever a keyed grid stage runs; GDC keeps the
    /// serial head and carries none of them.
    fn new(config: &IcpeConfig) -> SharedHandles {
        let grid = config.clusterer != ClustererKind::Gdc;
        SharedHandles {
            metrics: PipelineMetrics::new(),
            obs: MetricRegistry::new(),
            routing: grid.then(|| RoutingHandle {
                table: Arc::new(RoutingTable::new()),
                tracker: Arc::new(LoadTracker::new(config.parallelism)),
            }),
            sync: grid.then(|| SyncHandle {
                stats: Arc::new(SyncStats::new(config.parallelism, config.sync_fanin)),
            }),
            align: grid.then(|| AlignHandle {
                stats: AlignStats::new(config.align_shards),
            }),
        }
    }

    /// Rewinds every shared surface to the state `resume` describes — the
    /// checkpoint cut on recovery/restore, all-zero on a fresh launch. The
    /// cumulative counters the replayed records re-earn land on top of the
    /// cut values, so totals stay conserved across a recovery.
    fn reset_to(&self, resume: &ResumeState) {
        self.metrics.restore(&ProgressCheckpoint {
            snapshots_completed: resume.completed,
            late_records: resume.aligner.late_dropped(),
            max_sealed: resume.max_sealed,
        });
        // The registry's event journal is deliberately NOT reset: journal
        // seqs stay monotonic across generations so `EVENTS since-seq`
        // consumers never see time move backwards; only the counters rewind
        // to the cut.
        match &resume.obs {
            Some(ckpt) => self.obs.reset_counters_to(ckpt),
            None => self.obs.reset_counters_to(&ObsCheckpoint {
                counters: Vec::new(),
            }),
        }
        if let (Some(routing), Some(balancer)) = (&self.routing, &resume.balancer) {
            // `install` replaces the table outright; the migration counter
            // only tops up to the cut value (it may already exceed it after
            // an in-process restart — migrations really happened).
            let behind = balancer
                .cells_migrated()
                .saturating_sub(routing.table.status().cells_migrated);
            routing
                .table
                .install(balancer.epoch(), balancer.table_assignments(), behind);
        }
        if let Some(sync) = &self.sync {
            match &resume.sync {
                Some(ckpt) => {
                    sync.stats
                        .restore(ckpt.pairs_merged, ckpt.duplicates, ckpt.windows_sealed)
                }
                None => sync.stats.restore(0, 0, 0),
            }
        }
        if let Some(align) = &self.align {
            align.stats.restore(
                resume.aligner.late_dropped(),
                resume.aligner_ckpt.as_ref().and_then(|c| c.sealed_up_to),
            );
        }
    }
}

/// Spawns one dataflow *generation*: the ingest channel plus the driver
/// thread running [`drive`] against the shared handles. Both launch paths
/// go through here; the supervised one passes a failure channel (stage
/// panics report instead of poisoning the process) and the delivery
/// ledger (exactly-once output across recovery cuts).
fn launch_generation(
    config: &IcpeConfig,
    resume: ResumeState,
    shared: &SharedHandles,
    failures: Option<crossbeam::channel::Sender<StageFailure>>,
    ledger: Option<Arc<Mutex<DeliveryLedger>>>,
    on_event: impl FnMut(PipelineEvent) + Send + 'static,
) -> (crossbeam::channel::Sender<InputMsg>, JoinHandle<()>) {
    let (input, records) = ingest_channel::<InputMsg>(config.runtime.channel_capacity);
    let driver_config = config.clone();
    let driver_metrics = shared.metrics.clone();
    let driver_routing = shared.routing.clone();
    let driver_sync = shared.sync.clone();
    let driver_align = shared.align.clone();
    let driver_obs = shared.obs.clone();
    let driver = std::thread::Builder::new()
        .name("icpe-driver".into())
        .spawn(move || {
            drive(
                driver_config,
                records,
                driver_metrics,
                resume,
                driver_routing,
                driver_sync,
                driver_align,
                driver_obs,
                failures,
                ledger,
                on_event,
            )
        })
        .expect("failed to spawn pipeline driver thread");
    (input, driver)
}

/// What one sink delivery is keyed by in the [`DeliveryLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LedgerKey {
    /// A pattern, by stable 64-bit content hash (a collision would wrongly
    /// suppress one delivery in ~2⁻⁶⁴ of replayed pairs — accepted).
    Pattern(u64),
    /// A `SnapshotSealed { time }` notification.
    Sealed(u32),
}

/// Exactly-once output accounting across recovery cuts.
///
/// Replaying from a checkpoint re-runs everything after the cut, so the
/// relaunched generation re-emits deliveries the crashed one already made.
/// The ledger counts, per key, how many copies the user has *seen* since
/// the latest committed cut (`seen`) and how many the current generation
/// has *emitted* since that cut (`emitted`): an emission is delivered only
/// once it exceeds the seen count. Replay emits a sub-multiset of the
/// uninterrupted stream (the dataflow is deterministic from a cut), so
/// per-key counting suppresses exactly the duplicates — no more, no less.
///
/// A barrier in flight opens a *cut window* (first engine piece at the
/// sink) holding next-epoch maps; deliveries from subtasks that already
/// deposited their piece are post-cut and land there. When the last piece
/// arrives the window commits — on the driver thread, immediately before
/// the checkpoint reply is sent, so no delivery can slip between the cut
/// and the epoch swap. A crash mid-window aborts it, folding the window's
/// deliveries back into `seen` (they are user-visible and post-*previous*-
/// cut, which is what recovery will replay from). Supervised pipelines
/// serialize barriers, so at most one window is ever open.
#[derive(Debug, Default)]
struct DeliveryLedger {
    seen: HashMap<LedgerKey, u64>,
    emitted: HashMap<LedgerKey, u64>,
    cutting: Option<CutWindow>,
}

/// A barrier mid-assembly: which enumeration subtasks the barrier already
/// passed, and the next epoch's ledger maps.
#[derive(Debug, Default)]
struct CutWindow {
    passed: std::collections::HashSet<usize>,
    seen: HashMap<LedgerKey, u64>,
    emitted: HashMap<LedgerKey, u64>,
}

impl DeliveryLedger {
    /// Accounts one emission by `subtask`; true when it must reach the
    /// user, false when it replays a delivery the user already saw.
    fn admit(&mut self, subtask: usize, key: LedgerKey) -> bool {
        let epoch = match &mut self.cutting {
            Some(cut) if cut.passed.contains(&subtask) => (&mut cut.seen, &mut cut.emitted),
            _ => (&mut self.seen, &mut self.emitted),
        };
        let emitted = epoch.1.entry(key).or_insert(0);
        *emitted += 1;
        let seen = epoch.0.entry(key).or_insert(0);
        if *emitted <= *seen {
            return false;
        }
        *seen += 1;
        true
    }

    /// Accounts a completed snapshot seal. Seals are never ambiguous: a
    /// pre-cut seal completes before the assembly does (every subtask's
    /// `Done` precedes its engine piece) and a post-cut seal completes
    /// after commit, so the current epoch is always the right one.
    fn admit_sealed(&mut self, time: u32) -> bool {
        let key = LedgerKey::Sealed(time);
        let emitted = self.emitted.entry(key).or_insert(0);
        *emitted += 1;
        let seen = self.seen.entry(key).or_insert(0);
        if *emitted <= *seen {
            return false;
        }
        *seen += 1;
        true
    }

    /// The barrier passed enumeration subtask `subtask` (its engine piece
    /// reached the sink): subsequent emissions from it are post-cut.
    fn subtask_passed(&mut self, subtask: usize) {
        self.cutting
            .get_or_insert_with(CutWindow::default)
            .passed
            .insert(subtask);
    }

    /// The checkpoint assembled: everything user-visible before the cut is
    /// inside it, so the window's maps become the whole ledger.
    fn commit_cut(&mut self) {
        let cut = self.cutting.take().unwrap_or_default();
        self.seen = cut.seen;
        self.emitted = cut.emitted;
    }

    /// A new generation restarts from the latest *committed* cut: its
    /// emission counters reset; the user-visible history — including an
    /// aborted window's, which is post-that-cut — stays to be replayed
    /// against.
    fn on_restart(&mut self) {
        if let Some(cut) = self.cutting.take() {
            for (key, n) in cut.seen {
                *self.seen.entry(key).or_insert(0) += n;
            }
        }
        self.emitted.clear();
    }
}

/// One spawned dataflow generation, as the supervisor sees it.
struct Generation {
    input: crossbeam::channel::Sender<InputMsg>,
    driver: JoinHandle<()>,
    failures: crossbeam::channel::Receiver<StageFailure>,
    /// Keeps the failure channel's send side open for the generation's
    /// lifetime so `failures.try_recv()` distinguishes "no report yet"
    /// from noise; workers hold clones only while alive.
    keepalive: crossbeam::channel::Sender<StageFailure>,
}

/// The self-healing wrapper around the dataflow (see
/// [`IcpePipeline::launch`] with [`Supervision`] configured): relays
/// producer input into the current generation, buffers records since the
/// latest cut, takes automatic checkpoints on the policy's record cadence,
/// and restarts crashed generations from the cut with bounded exponential
/// backoff until the restart budget runs out.
struct Supervisor {
    config: IcpeConfig,
    policy: Supervision,
    shared: SharedHandles,
    health: HealthHandle,
    ledger: Arc<Mutex<DeliveryLedger>>,
    /// The user's event sink, shared across generations (each generation's
    /// driver funnels admitted deliveries through it).
    sink: EventSink,
    outer: crossbeam::channel::Receiver<InputMsg>,
    ckpt_seq: Arc<AtomicU64>,
    /// The latest fully assembled checkpoint — the recovery cut.
    latest: Option<PipelineCheckpoint>,
    /// The reply slot of a barrier that was in flight when its generation
    /// died. The sink commits the delivery ledger to the new cut
    /// immediately before replying, so if the reply made it out we must
    /// adopt that cut — recovering from the older one would replay
    /// deliveries the ledger no longer remembers suppressing.
    pending_cut: Option<crossbeam::channel::Receiver<PipelineCheckpoint>>,
    /// Every record relayed since that cut, in order: the replay source.
    buffer: Vec<GpsRecord>,
    restarts_used: u32,
    // Supervisor-owned cumulative totals. The registry's counters rewind to
    // the cut on every recovery, so these re-credit afterwards — restart
    // accounting must never be undone by the very recovery it counts.
    restarts_total: u64,
    recoveries_total: u64,
    recovery_nanos_total: u64,
    replayed_total: u64,
}

type EventSink = Arc<Mutex<Box<dyn FnMut(PipelineEvent) + Send>>>;

/// How long the supervisor waits on producer input before polling the
/// failure channel (failure-detection latency when the stream idles).
const SUPERVISOR_POLL: std::time::Duration = std::time::Duration::from_millis(20);

impl Supervisor {
    fn run(mut self, resume: ResumeState) {
        let mut gen = Some(self.spawn_generation(resume));
        loop {
            let Some(g) = gen.as_ref() else {
                // Terminal `Failed`: swallow input so producers never hang;
                // dropping a barrier's reply sender fails its checkpoint()
                // call cleanly. Ends when every producer handle is gone.
                for msg in self.outer.iter() {
                    drop(msg);
                }
                return;
            };
            if let Ok(failure) = g.failures.try_recv() {
                let dead = gen.take().expect("generation present");
                gen = self.recover(dead, failure);
                continue;
            }
            match self.outer.recv_timeout(SUPERVISOR_POLL) {
                Ok(msg) => {
                    let g = gen.as_mut().expect("generation present");
                    if let Err(failure) = self.relay_into(g, msg) {
                        let dead = gen.take().expect("generation present");
                        gen = self.recover(dead, failure);
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    let last = gen.take().expect("generation present");
                    self.wind_down(last);
                    return;
                }
            }
        }
    }

    /// Forwards one producer message into the live generation, buffering
    /// data for replay and expanding barriers into supervised checkpoints.
    /// `Err` carries the stage failure that killed the generation.
    fn relay_into(&mut self, gen: &mut Generation, msg: InputMsg) -> Result<(), StageFailure> {
        match msg {
            InputMsg::Record(record) => {
                self.buffer.push(record);
                gen.input
                    .send(InputMsg::Record(record))
                    .map_err(|_| self.death_report(gen))?;
            }
            InputMsg::Batch(batch) => {
                self.buffer.extend_from_slice(&batch);
                gen.input
                    .send(InputMsg::Batch(batch))
                    .map_err(|_| self.death_report(gen))?;
            }
            InputMsg::Barrier(request) => {
                // The producer's own checkpoint doubles as the recovery
                // cut. On failure the request is dropped — its caller
                // unblocks with Disconnected — and recovery proceeds.
                let checkpoint = self.take_checkpoint(gen, request.seq)?;
                let _ = request.reply.send(checkpoint);
                return Ok(());
            }
        }
        if let Some(every) = self.policy.checkpoint_every_records {
            if self.buffer.len() as u64 >= every {
                let seq = self.ckpt_seq.fetch_add(1, Ordering::Relaxed) + 1;
                self.take_checkpoint(gen, seq)?;
            }
        }
        Ok(())
    }

    /// Injects a barrier and blocks for the assembled checkpoint; success
    /// advances the recovery cut and empties the replay buffer.
    fn take_checkpoint(
        &mut self,
        gen: &mut Generation,
        seq: u64,
    ) -> Result<PipelineCheckpoint, StageFailure> {
        let (reply, rx) = crossbeam::channel::bounded(1);
        if gen
            .input
            .send(InputMsg::Barrier(Arc::new(BarrierRequest { seq, reply })))
            .is_err()
        {
            self.pending_cut = Some(rx);
            return Err(self.death_report(gen));
        }
        // Polls rather than blocks: if a worker dies while the barrier is
        // in flight the cut can never assemble (the dead subtask's engine
        // piece is missing) while the rest of the generation idles waiting
        // for input that only this supervisor can provide — a deadlock
        // unless the failure report preempts the wait. On failure the rx
        // is parked in `pending_cut`; `respawn` re-checks it after the
        // driver is joined, when the reply is either there or never coming.
        loop {
            match rx.recv_timeout(SUPERVISOR_POLL) {
                Ok(checkpoint) => {
                    self.latest = Some(checkpoint.clone());
                    self.buffer.clear();
                    return Ok(checkpoint);
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if let Ok(failure) = gen.failures.try_recv() {
                        self.pending_cut = Some(rx);
                        return Err(failure);
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    self.pending_cut = Some(rx);
                    return Err(self.death_report(gen));
                }
            }
        }
    }

    /// The failure report behind a dead ingest channel — gives the panic
    /// report a moment to arrive before synthesizing a generic one.
    fn death_report(&self, gen: &Generation) -> StageFailure {
        gen.failures
            .recv_timeout(std::time::Duration::from_millis(200))
            .unwrap_or_else(|_| StageFailure {
                stage: "pipeline".into(),
                subtask: 0,
                cause: "generation terminated unexpectedly".into(),
            })
    }

    /// Tears down a dead generation, then restarts from the latest cut.
    fn recover(&mut self, gen: Generation, failure: StageFailure) -> Option<Generation> {
        self.teardown(gen);
        self.respawn(failure)
    }

    /// Completes a generation's teardown: close its ingest, join its
    /// driver. A driver panic is the user's sink callback panicking —
    /// that is not a stage failure, and propagates out of `finish()` just
    /// as it does unsupervised.
    fn teardown(&self, gen: Generation) {
        let Generation { input, driver, .. } = gen;
        drop(input);
        if let Err(payload) = driver.join() {
            std::panic::resume_unwind(payload);
        }
    }

    /// The recovery loop: backoff, rewind the shared surfaces to the cut,
    /// relaunch, replay the buffer. Returns the healthy new generation, or
    /// `None` once the restart budget is spent (pipeline terminally
    /// [`HealthState::Failed`]).
    fn respawn(&mut self, failure: StageFailure) -> Option<Generation> {
        self.health.set(HealthState::Recovering);
        let started = Instant::now();
        self.shared.obs.emit(ObsEventKind::StageFailed {
            stage: failure.stage.clone(),
            subtask: failure.subtask as u64,
        });
        eprintln!("icpe-core: {failure}; recovering from latest checkpoint");
        // The dying generation's driver is joined by now, so a barrier that
        // was in flight when it died has either delivered its checkpoint or
        // never will. If it delivered, the sink committed the ledger to
        // that cut right before replying — adopt it so the replay cut and
        // the ledger agree (the buffer holds nothing newer than the
        // barrier: the supervisor relays nothing while a cut is pending).
        if let Some(rx) = self.pending_cut.take() {
            if let Ok(checkpoint) = rx.try_recv() {
                self.latest = Some(checkpoint);
                self.buffer.clear();
            }
        }
        loop {
            if self.restarts_used >= self.policy.max_restarts {
                self.health.set(HealthState::Failed);
                self.shared.obs.emit(ObsEventKind::PipelineFailed {
                    restarts: self.restarts_used as u64,
                });
                self.sync_supervisor_metrics();
                eprintln!(
                    "icpe-core: restart budget exhausted after {} attempts; pipeline failed",
                    self.restarts_used
                );
                return None;
            }
            self.restarts_used += 1;
            self.restarts_total += 1;
            let attempt = self.restarts_used;
            self.shared.obs.emit(ObsEventKind::PipelineRecovering {
                restart: attempt as u64,
            });
            std::thread::sleep(self.backoff_for(attempt));
            let resume = match &self.latest {
                Some(ckpt) => match ResumeState::from_checkpoint(&self.config, ckpt) {
                    Ok(resume) => resume,
                    // Unreachable for a checkpoint this supervisor
                    // assembled (validated by construction); a fresh
                    // restart is the only remaining move.
                    Err(e) => {
                        eprintln!("icpe-core: latest checkpoint unusable ({e}); restarting fresh");
                        ResumeState::fresh(&self.config)
                    }
                },
                None => ResumeState::fresh(&self.config),
            };
            self.shared.reset_to(&resume);
            self.ledger
                .lock()
                .expect("delivery ledger poisoned")
                .on_restart();
            self.sync_supervisor_metrics();
            let gen = self.spawn_generation(resume);
            let batch = self.config.runtime.batch_size.max(1);
            let mut replayed = 0u64;
            let mut died_mid_replay = false;
            for chunk in self.buffer.chunks(batch) {
                if gen.input.send(InputMsg::Batch(chunk.to_vec())).is_err() {
                    died_mid_replay = true;
                    break;
                }
                replayed += chunk.len() as u64;
            }
            if died_mid_replay {
                self.teardown(gen);
                continue;
            }
            self.recoveries_total += 1;
            self.recovery_nanos_total += started.elapsed().as_nanos() as u64;
            self.replayed_total += replayed;
            self.shared.obs.emit(ObsEventKind::PipelineRecovered {
                restart: attempt as u64,
                replayed,
            });
            self.sync_supervisor_metrics();
            self.health
                .set(if self.restarts_used * 2 > self.policy.max_restarts {
                    HealthState::Degraded
                } else {
                    HealthState::Healthy
                });
            return Some(gen);
        }
    }

    fn backoff_for(&self, attempt: u32) -> std::time::Duration {
        let doubled = self
            .policy
            .backoff
            .checked_mul(1u32 << (attempt - 1).min(16))
            .unwrap_or(self.policy.max_backoff);
        doubled.min(self.policy.max_backoff)
    }

    /// Every producer handle dropped: flush the final generation (engines
    /// emit their end-of-stream patterns through the ledgered sink) and
    /// heal failures that strike *during* that flush, so `finish()` still
    /// returns the complete output.
    fn wind_down(&mut self, gen: Generation) {
        let mut gen = gen;
        loop {
            let Generation {
                input,
                driver,
                failures,
                keepalive,
            } = gen;
            drop(input);
            if let Err(payload) = driver.join() {
                std::panic::resume_unwind(payload);
            }
            drop(keepalive);
            match failures.try_recv() {
                Ok(failure) => match self.respawn(failure) {
                    Some(next) => gen = next,
                    None => return,
                },
                Err(_) => return,
            }
        }
    }

    /// Re-credits the supervisor's own cumulative counters after a registry
    /// rewind (counters named per the `seconds_total`-holds-nanos registry
    /// convention), and refreshes the mean-recovery gauge.
    fn sync_supervisor_metrics(&self) {
        let top_up = |name: &str, total: u64| {
            let c = self.shared.obs.counter("supervisor", 0, name);
            c.add(total.saturating_sub(c.get()));
        };
        top_up("pipeline_restarts_total", self.restarts_total);
        top_up("pipeline_recoveries_total", self.recoveries_total);
        top_up("recovery_seconds_total", self.recovery_nanos_total);
        top_up("replayed_records_total", self.replayed_total);
        let mean_ms = self
            .recovery_nanos_total
            .checked_div(self.recoveries_total)
            .unwrap_or(0)
            / 1_000_000;
        self.shared
            .obs
            .gauge("supervisor", 0, "mean_recovery_ms")
            .set(mean_ms);
    }

    fn spawn_generation(&self, resume: ResumeState) -> Generation {
        let (failure_tx, failure_rx) = crossbeam::channel::bounded(64);
        let sink = Arc::clone(&self.sink);
        let on_event = move |event: PipelineEvent| {
            (sink.lock().expect("event sink poisoned"))(event);
        };
        let (input, driver) = launch_generation(
            &self.config,
            resume,
            &self.shared,
            Some(failure_tx.clone()),
            Some(Arc::clone(&self.ledger)),
            on_event,
        );
        Generation {
            input,
            driver,
            failures: failure_rx,
            keepalive: failure_tx,
        }
    }
}

// ---- restore plumbing ------------------------------------------------------

/// The engine name a configuration's enumerator kind writes into (and
/// expects back from) a checkpoint.
pub(crate) fn engine_kind_name(kind: EnumeratorKind) -> &'static str {
    match kind {
        EnumeratorKind::Baseline => "BA",
        EnumeratorKind::Fba => "FBA",
        EnumeratorKind::Vba => "VBA",
    }
}

/// Builds a fresh enumeration engine of the configured kind.
pub(crate) fn build_engine(
    kind: EnumeratorKind,
    config: icpe_pattern::EngineConfig,
) -> Box<dyn PatternEngine + Send> {
    match kind {
        EnumeratorKind::Baseline => Box::new(BaselineEngine::new(config)),
        EnumeratorKind::Fba => Box::new(FbaEngine::new(config)),
        EnumeratorKind::Vba => Box::new(VbaEngine::new(config)),
    }
}

/// Restores an enumeration engine from a checkpoint, keeping only the
/// owners `keep` selects.
pub(crate) fn restore_engine(
    kind: EnumeratorKind,
    config: icpe_pattern::EngineConfig,
    ckpt: &EngineCheckpoint,
    keep: impl Fn(ObjectId) -> bool,
) -> Result<Box<dyn PatternEngine + Send>, CheckpointError> {
    Ok(match kind {
        EnumeratorKind::Baseline => Box::new(BaselineEngine::from_checkpoint(config, ckpt, keep)?),
        EnumeratorKind::Fba => Box::new(FbaEngine::from_checkpoint(config, ckpt, keep)?),
        EnumeratorKind::Vba => Box::new(VbaEngine::from_checkpoint(config, ckpt, keep)?),
    })
}

/// Everything a (re)started dataflow begins from. For a fresh launch this
/// is empty state; for a restore it is fully validated before any thread
/// spawns, so a bad checkpoint fails the launch instead of panicking a
/// subtask later.
struct ResumeState {
    /// The serial aligner for the GDC head; also the source of the
    /// restored late-drop gauge either way.
    aligner: TimeAligner,
    /// The checkpoint's merged aligner section (`None` on a fresh launch):
    /// the sharded head rebuilds its router (chains + counters) and
    /// owner-filters the buffered rows onto the restored deployment's
    /// aligner shards from this — possibly at a different shard count than
    /// the one that wrote it.
    aligner_ckpt: Option<AlignerCheckpoint>,
    /// One pre-built engine per enumeration subtask.
    engines: Vec<Box<dyn PatternEngine + Send>>,
    /// The adaptive-routing controller (`None` under static routing),
    /// pre-seeded from the checkpoint's routing section on restore.
    balancer: Option<LoadBalancer>,
    /// The checkpoint's merged sync section (`None` on a fresh launch or
    /// a pre-sync checkpoint): counters rehydrate the shared gauges and
    /// the subtask-0 shard op; pending pairs owner-filter back onto the
    /// shards that own them at the restored parallelism.
    sync: Option<SyncCheckpoint>,
    /// The checkpoint's cumulative stage/exchange counters (`None` on a
    /// fresh launch or a pre-obs checkpoint); rehydrated into the new
    /// deployment's [`MetricRegistry`] before any stage thread spawns.
    obs: Option<ObsCheckpoint>,
    records_ingested: u64,
    completed: u64,
    max_sealed: Option<u32>,
    next_seq: u64,
}

impl ResumeState {
    fn fresh(config: &IcpeConfig) -> ResumeState {
        let engine_config = config.engine_config();
        ResumeState {
            aligner: TimeAligner::new(config.aligner),
            aligner_ckpt: None,
            engines: (0..config.parallelism)
                .map(|_| build_engine(config.enumerator, engine_config))
                .collect(),
            balancer: config
                .rebalance
                .map(|bc| LoadBalancer::new(bc, config.parallelism)),
            sync: None,
            obs: None,
            records_ingested: 0,
            completed: 0,
            max_sealed: None,
            next_seq: 1,
        }
    }

    fn from_checkpoint(
        config: &IcpeConfig,
        ckpt: &PipelineCheckpoint,
    ) -> Result<ResumeState, CheckpointError> {
        ckpt.check_version()?;
        let expected = engine_kind_name(config.enumerator);
        if ckpt.engine.kind != expected {
            return Err(CheckpointError::EngineMismatch {
                checkpoint: ckpt.engine.kind.clone(),
                config: expected.into(),
            });
        }
        let n = config.parallelism;
        let engine_config = config.engine_config();
        // The skipped-partition counter is cumulative across the whole
        // deployment: restore it into subtask 0 only, or the next
        // checkpoint's merge would multiply it by the parallelism.
        let mut tail = ckpt.engine.clone();
        tail.skipped_partitions = 0;
        let engines = (0..n)
            .map(|i| {
                let piece = if i == 0 { &ckpt.engine } else { &tail };
                // The same owner→subtask mapping the keyed exchange uses,
                // so each subtask loads exactly the owners routed to it.
                restore_engine(config.enumerator, engine_config, piece, |owner| {
                    subtask_for(hash_id(owner), n) == i
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        // Resume the learned cell placement when both the checkpoint
        // carries one and the configuration still wants adaptive routing;
        // a static restore of an adaptive checkpoint simply ignores it
        // (the table is a performance hint, never correctness state).
        let balancer = config.rebalance.map(|bc| match &ckpt.routing {
            Some(routing) => LoadBalancer::from_checkpoint(bc, n, routing),
            None => LoadBalancer::new(bc, n),
        });
        Ok(ResumeState {
            aligner: TimeAligner::from_checkpoint(config.aligner, &ckpt.aligner),
            aligner_ckpt: Some(ckpt.aligner.clone()),
            engines,
            balancer,
            sync: ckpt.sync.clone(),
            obs: ckpt.obs.clone(),
            records_ingested: ckpt.records_ingested,
            completed: ckpt.progress.snapshots_completed,
            max_sealed: ckpt.progress.max_sealed,
            next_seq: ckpt.seq + 1,
        })
    }
}

/// Driver-thread body of a launched pipeline: builds the dataflow with a
/// channel source and drains it into the event callback.
#[allow(clippy::too_many_arguments)]
fn drive(
    config: IcpeConfig,
    records: crossbeam::channel::Receiver<InputMsg>,
    metrics: PipelineMetrics,
    resume: ResumeState,
    routing: Option<RoutingHandle>,
    sync: Option<SyncHandle>,
    align: Option<AlignHandle>,
    obs: MetricRegistry,
    failures: Option<crossbeam::channel::Sender<StageFailure>>,
    ledger: Option<Arc<Mutex<DeliveryLedger>>>,
    mut on_event: impl FnMut(PipelineEvent) + Send + 'static,
) {
    let n = config.parallelism;
    let ResumeState {
        aligner,
        aligner_ckpt,
        engines,
        balancer,
        sync: sync_resume,
        records_ingested,
        completed,
        ..
    } = resume;

    let engine_cells: Vec<Mutex<Option<Box<dyn PatternEngine + Send>>>> =
        engines.into_iter().map(|e| Mutex::new(Some(e))).collect();

    let mut source = Stream::from_channel(config.runtime.clone(), records);
    if let Some(reports) = failures {
        // Every stage declared below runs panic-isolated: a dying subtask
        // reports a typed StageFailure to the supervisor instead of
        // poisoning the process, and the teardown cascade quiesces the
        // survivors.
        source = source.supervise(reports);
    }
    if config.instrument {
        // Every stage declared below records per-batch latency and
        // record counts; every exchange hop records queue depth and
        // blocked-send time. With `instrument` off the stages carry no
        // observation state at all — the bench's no-op baseline.
        source = source.instrument(&obs);
    }
    let partitions = cluster_stages(
        source,
        &config,
        &metrics,
        &obs,
        routing,
        balancer,
        sync,
        sync_resume,
        align,
        aligner,
        aligner_ckpt,
        records_ingested,
    );
    let outputs = partitions.apply(
        "enumerate",
        n,
        Exchange::per_record(|msg: &PartMsg| match msg {
            PartMsg::Part { partition, .. } => Routing::Key(hash_id(partition.owner)),
            PartMsg::Tick(_) | PartMsg::Barrier(_) => Routing::Broadcast,
        }),
        move |i| EnumerateOp {
            subtask: i,
            engine: engine_cells[i]
                .lock()
                .expect("engine cell poisoned")
                .take()
                .expect("each enumerate subtask starts once"),
            pending: HashMap::new(),
        },
    );

    let mut done_counts: HashMap<u32, usize> = HashMap::new();
    let mut completed = completed;
    // In-flight checkpoint assemblies: seq → collected engine pieces.
    let mut pending_ckpts: HashMap<u64, (Arc<BarrierToken>, Vec<EngineCheckpoint>)> =
        HashMap::new();
    outputs.for_each(|msg| match msg {
        OutMsg::Pattern { subtask, pattern } => {
            // Under supervision the ledger suppresses re-deliveries of
            // patterns the crashed generation already surfaced post-cut.
            let admit = match &ledger {
                Some(ledger) => ledger
                    .lock()
                    .expect("delivery ledger poisoned")
                    .admit(subtask, LedgerKey::Pattern(stable_hash(&pattern))),
                None => true,
            };
            if admit {
                on_event(PipelineEvent::Pattern(pattern));
            }
        }
        OutMsg::Done(t) => {
            let c = done_counts.entry(t).or_insert(0);
            *c += 1;
            if *c == n {
                done_counts.remove(&t);
                // Progress accounting always runs — the shared surfaces
                // were rewound to the cut, and replayed seals re-earn
                // their place in them. Only the *user-facing* sealed
                // notification is exactly-once.
                completed += 1;
                metrics.mark_done(t);
                obs.emit(ObsEventKind::WindowSealed { time: t });
                let admit = match &ledger {
                    Some(ledger) => ledger
                        .lock()
                        .expect("delivery ledger poisoned")
                        .admit_sealed(t),
                    None => true,
                };
                if admit {
                    on_event(PipelineEvent::SnapshotSealed { time: t });
                }
            }
        }
        OutMsg::Checkpoint {
            subtask,
            token,
            engine,
        } => {
            if let Some(ledger) = &ledger {
                ledger
                    .lock()
                    .expect("delivery ledger poisoned")
                    .subtask_passed(subtask);
            }
            let entry = pending_ckpts
                .entry(token.request.seq)
                .or_insert_with(|| (Arc::clone(&token), Vec::new()));
            entry.1.push(engine);
            if entry.1.len() == n {
                let (token, pieces) = pending_ckpts.remove(&token.request.seq).unwrap();
                let engine = EngineCheckpoint::merge(pieces)
                    .expect("subtask checkpoints share one engine kind");
                // By the time the last engine piece arrives here, the
                // barrier has aligned through every sync shard and the
                // tree finalizer (their channel sends happen-before the
                // enumeration pieces'), so the slot holds all N + 1 sync
                // pieces; empty under GDC.
                let sync_pieces =
                    std::mem::take(&mut *token.sync.lock().expect("sync slot poisoned"));
                let sync = (!sync_pieces.is_empty()).then(|| SyncCheckpoint::merge(sync_pieces));
                // Same happens-before argument for the aligner shards: each
                // deposits its buffer-only piece before forwarding the
                // barrier into the snapshot-merge tree. The router's piece
                // (chains + counters) plus the shard pieces merge into one
                // canonical, shard-count-independent aligner section; under
                // the GDC serial head the slot is empty and the token
                // already carries the complete checkpoint.
                let shard_pieces = std::mem::take(
                    &mut *token
                        .aligner_shards
                        .lock()
                        .expect("aligner shard slot poisoned"),
                );
                let aligner = if shard_pieces.is_empty() {
                    token.aligner.clone()
                } else {
                    let mut pieces = Vec::with_capacity(shard_pieces.len() + 1);
                    pieces.push(token.aligner.clone());
                    pieces.extend(shard_pieces);
                    AlignerCheckpoint::merge(pieces)
                };
                let checkpoint = PipelineCheckpoint {
                    version: CHECKPOINT_VERSION,
                    seq: token.request.seq,
                    records_ingested: token.records_ingested,
                    progress: ProgressCheckpoint {
                        snapshots_completed: completed,
                        late_records: aligner.late_dropped,
                        // sealed_up_to is `u + 1` after sealing `u`, so it
                        // is ≥ 1 whenever Some.
                        max_sealed: aligner.sealed_up_to.map(|s| s - 1),
                    },
                    aligner,
                    engine,
                    // Deposited by the allocate subtask as the barrier
                    // passed it; `None` under static routing / GDC.
                    routing: token.routing.lock().expect("routing slot poisoned").clone(),
                    sync,
                    // The registry's cumulative counters at (just after)
                    // the cut — a restored deployment's METRICS totals
                    // continue from here.
                    obs: Some(obs.counter_checkpoint()),
                };
                obs.emit(ObsEventKind::BarrierPassed {
                    checkpoint_seq: token.request.seq,
                });
                // The cut commits on this thread, immediately before the
                // reply: once the supervisor receives the checkpoint, the
                // ledger provably holds only post-cut deliveries (nothing
                // is delivered between these two statements).
                if let Some(ledger) = &ledger {
                    ledger
                        .lock()
                        .expect("delivery ledger poisoned")
                        .commit_cut();
                }
                // The requester may have given up (timeout/shutdown);
                // nothing to do then.
                let _ = token.request.reply.send(checkpoint);
            }
        }
    });
}

/// Builds the full clustering dataflow — alignment head included — for
/// the configured method, producing the keyed partition stream consumed
/// by enumeration. The grid clusterers run the sharded head (frontier
/// router → aligner shards with fused GridAllocate → snapshot-merge
/// tree); GDC keeps the serial `align` stage, having no grid work to
/// fuse into shards.
#[allow(clippy::too_many_arguments)]
fn cluster_stages(
    source: Stream<InputMsg>,
    config: &IcpeConfig,
    metrics: &PipelineMetrics,
    obs: &MetricRegistry,
    routing: Option<RoutingHandle>,
    balancer: Option<LoadBalancer>,
    sync: Option<SyncHandle>,
    sync_resume: Option<SyncCheckpoint>,
    align: Option<AlignHandle>,
    aligner: TimeAligner,
    aligner_ckpt: Option<AlignerCheckpoint>,
    records_ingested: u64,
) -> Stream<PartMsg> {
    let n = config.parallelism;
    let m = config.constraints.m();
    let dbscan = config.dbscan;
    let metric = config.metric;
    let lg = config.lg;
    match config.clusterer {
        ClustererKind::Rjc | ClustererKind::Srj => {
            let full_replication = config.clusterer == ClustererKind::Srj;
            let build_then_query = full_replication;
            let routing = routing.expect("grid clusterers run with a routing layer");
            let table = Arc::clone(&routing.table);
            let tracker = Arc::clone(&routing.tracker);
            let sync_stats = Arc::clone(&sync.expect("grid clusterers run with sync stats").stats);
            let align_stats =
                Arc::clone(&align.expect("grid clusterers run the sharded head").stats);
            let shards = config.align_shards;
            // The frontier router: the one serial subtask, owning the
            // chains (partitioned by shard) and the global seal frontier.
            // On restore it rebuilds from the checkpoint's canonical
            // aligner section — at this deployment's shard count, which
            // may differ from the one that wrote it.
            let router = match &aligner_ckpt {
                Some(ckpt) => ShardedAligner::from_checkpoint(config.aligner, shards, ckpt),
                None => ShardedAligner::new(config.aligner, shards),
            };
            let routed = source.single(
                "align-route",
                Exchange::Rebalance,
                AlignRouteOp {
                    reported_late: router.late_dropped_total(),
                    router,
                    metrics: metrics.clone(),
                    obs: obs.clone(),
                    stats: Arc::clone(&align_stats),
                    records_ingested,
                    buckets: vec![Vec::new(); shards],
                    sealed: Vec::new(),
                },
            );
            // S aligner shards, keyed by trajectory: each buffers the rows
            // of its trajectories and — at the router's Seal punctuation —
            // runs GridAllocate over them (per-record stateless, so the
            // cell-assignment work rides the shards for free) and emits
            // one grid-object partial per sealed time.
            let eps = dbscan.eps;
            let shard_partials = routed.apply(
                "align-shard",
                shards,
                Exchange::per_record(|msg: &RouteMsg| match msg {
                    RouteMsg::Records { shard, .. } => Routing::Key(*shard as u64),
                    RouteMsg::Seal { .. } | RouteMsg::Barrier(_) => Routing::Broadcast,
                }),
                move |i| {
                    let mut buffers = BTreeMap::new();
                    if let Some(ckpt) = aligner_ckpt.as_ref() {
                        // The same owner→shard mapping the exchange routes
                        // by, so each shard reloads exactly the buffered
                        // rows it will keep receiving.
                        let piece =
                            ckpt.piece(false, |owner| subtask_for(hash_id(owner), shards) == i);
                        for snapshot in piece.buffers {
                            buffers.insert(snapshot.time.0, snapshot);
                        }
                    }
                    AlignShardOp {
                        shard: i,
                        grid: Grid::new(lg),
                        eps,
                        full_replication,
                        buffers,
                    }
                },
            );
            // The partials reduce through an aggregation tree (same fanin
            // as the sync tree, ticks and barriers aligned at every level)
            // down to the one finalizer that runs the load balancer and
            // releases each window to the keyed grid exchange.
            let m0 = metrics.clone();
            let final_obs = obs.clone();
            let final_balancer = balancer;
            let final_table = Arc::clone(&table);
            let final_tracker = Arc::clone(&tracker);
            let grid_objects = shard_partials.reduce_tree(
                "snap-merge",
                shards,
                config.sync_fanin,
                |msg: &SnapMsg| msg.from(),
                |slot| SnapCombineOp {
                    slot,
                    align: TreeWindowAlign::new(slot.inputs),
                },
                move |inputs| SnapFinalOp {
                    metrics: m0,
                    obs: final_obs,
                    balancer: final_balancer,
                    table: final_table,
                    tracker: final_tracker,
                    align: TreeWindowAlign::new(inputs),
                    grid: Grid::new(lg),
                    eps: dbscan.eps,
                    full_replication,
                },
            );
            // Keyed on the grid cell either statically (`hash % N`) or
            // through the swappable routing table; ticks and barriers
            // broadcast either way.
            let route = |msg: &ClusterMsg| match msg {
                ClusterMsg::Obj(o) => Routing::Key(stable_hash(&o.key)),
                ClusterMsg::Tick(_) | ClusterMsg::Barrier(_) => Routing::Broadcast,
            };
            let exchange = if config.rebalance.is_some() {
                Exchange::dynamic(table, route)
            } else {
                Exchange::per_record(route)
            };
            let pairs = grid_objects.apply("grid-query", n, exchange, move |subtask| {
                QueryOp::new(
                    dbscan.eps,
                    metric,
                    build_then_query,
                    subtask,
                    n,
                    Arc::clone(&tracker),
                )
            });
            // The sharded merge path: pairs key on their owner's shard so
            // every duplicate of a pair meets its twin on one subtask,
            // each shard dedups the partitions it owns, and the partial
            // merges reduce through the aggregation tree down to the one
            // finalizer that runs DBSCAN and seals the window.
            let shard_stats = Arc::clone(&sync_stats);
            let shard_resume = sync_resume.clone();
            let partials = pairs.apply(
                "sync-shard",
                n,
                Exchange::per_record(|msg: &PairMsg| match msg {
                    PairMsg::Pairs { shard, .. } => Routing::Key(*shard as u64),
                    PairMsg::Tick(_) | PairMsg::Barrier(_) => Routing::Broadcast,
                }),
                move |i| ShardSyncOp::build(i, n, Arc::clone(&shard_stats), shard_resume.as_ref()),
            );
            let final_stats = Arc::clone(&sync_stats);
            let windows_sealed = sync_resume.map(|s| s.windows_sealed).unwrap_or(0);
            partials.reduce_tree(
                "sync-merge",
                n,
                config.sync_fanin,
                |msg: &MergeMsg| msg.from(),
                |slot| MergeCombineOp {
                    slot,
                    align: TreeWindowAlign::new(slot.inputs),
                },
                move |inputs| MergeFinalOp {
                    m,
                    dbscan,
                    stats: final_stats,
                    windows_sealed,
                    align: TreeWindowAlign::new(inputs),
                },
            )
        }
        ClustererKind::Gdc => {
            // The serial head: §4 alignment and the checkpoint cut in one
            // subtask, complete aligner checkpoints in the token.
            let snapshots = source.single(
                "align",
                Exchange::Rebalance,
                AlignBarrierOp {
                    reported_late: aligner.late_dropped(),
                    aligner,
                    metrics: metrics.clone(),
                    obs: obs.clone(),
                    records_ingested,
                    scratch: Vec::new(),
                },
            );
            let m0 = metrics.clone();
            snapshots.single(
                "gdc-cluster",
                Exchange::Rebalance,
                GdcOp {
                    clusterer: GdcClusterer::new(dbscan, metric),
                    m,
                    metrics: m0,
                },
            )
        }
    }
}

// ---- messages --------------------------------------------------------------

/// Align → clustering (the GDC serial head).
#[derive(Debug, Clone)]
enum AlignMsg {
    Snapshot(Snapshot),
    /// Checkpoint barrier: trails every snapshot sealed before the cut.
    Barrier(Arc<BarrierToken>),
}

/// Frontier router → aligner shards. Kept records travel keyed by their
/// owning shard; seal punctuation and barriers broadcast. The router
/// flushes every record bucket before emitting a `Seal`, so on each shard
/// channel the rows of a time always precede the punctuation listing it.
#[derive(Debug, Clone)]
enum RouteMsg {
    /// Kept records of one shard's trajectories, arrival order preserved.
    Records { shard: u32, records: Vec<GpsRecord> },
    /// These times sealed (ascending): flush their buffered rows through
    /// GridAllocate and tick the snapshot-merge tree.
    Seal { times: Vec<u32> },
    /// Checkpoint barrier carrying the router's piece; width-1 upstream,
    /// so shards forward without alignment counting.
    Barrier(Arc<BarrierToken>),
}

/// Aligner shards → snapshot-merge tree → finalizer. Every variant
/// carries its producer's index for [`Stream::reduce_tree`] routing,
/// exactly like [`MergeMsg`] on the sync path.
#[derive(Debug, Clone)]
enum SnapMsg {
    /// One producer's grid-object share of the sealed window `time`.
    Partial {
        from: usize,
        time: u32,
        objects: Vec<icpe_cluster::GridObject>,
    },
    Tick {
        from: usize,
        time: u32,
    },
    Barrier {
        from: usize,
        token: Arc<BarrierToken>,
    },
}

impl SnapMsg {
    /// The producing subtask's index at the previous tree level.
    fn from(&self) -> usize {
        match self {
            SnapMsg::Partial { from, .. }
            | SnapMsg::Tick { from, .. }
            | SnapMsg::Barrier { from, .. } => *from,
        }
    }
}

/// GridAllocate → GridQuery.
#[derive(Debug, Clone)]
enum ClusterMsg {
    Obj(icpe_cluster::GridObject),
    /// Snapshot boundary: all objects of this time have been emitted.
    Tick(u32),
    Barrier(Arc<BarrierToken>),
}

/// GridQuery → GridSync shards: pairs travel keyed by the owning shard
/// (the pair-owner hash at the sync parallelism), so both discoveries of
/// a duplicated pair meet on one subtask; ticks and barriers broadcast.
#[derive(Debug, Clone)]
enum PairMsg {
    Pairs {
        /// Destination sync shard (= `subtask_for(hash_id(pair.0), n)`,
        /// precomputed by the query subtask so the exchange can route the
        /// whole bundle in one decision).
        shard: u32,
        time: u32,
        pairs: Vec<NeighborPair>,
    },
    Tick(u32),
    Barrier(Arc<BarrierToken>),
}

/// GridSync shards → aggregation tree → finalizer. Every variant carries
/// its producer's index — [`Stream::reduce_tree`] routes on it, and each
/// combiner re-stamps its own slot index on what it forwards.
#[derive(Debug, Clone)]
enum MergeMsg {
    /// One producer's deduplicated share of window `time`: its distinct
    /// pairs plus the (sorted, deduplicated) object ids they mention —
    /// carried alongside so object-set union happens in the tree instead
    /// of as one big serial sort at the root.
    Partial {
        from: usize,
        time: u32,
        pairs: Vec<NeighborPair>,
        objects: Vec<ObjectId>,
    },
    Tick {
        from: usize,
        time: u32,
    },
    Barrier {
        from: usize,
        token: Arc<BarrierToken>,
    },
}

impl MergeMsg {
    /// The producing subtask's index at the previous tree level.
    fn from(&self) -> usize {
        match self {
            MergeMsg::Partial { from, .. }
            | MergeMsg::Tick { from, .. }
            | MergeMsg::Barrier { from, .. } => *from,
        }
    }
}

/// Merges two ascending, deduplicated id lists into one (the tree's
/// object-set union; linear, allocation-exact).
fn merge_sorted_ids(a: Vec<ObjectId>, b: Vec<ObjectId>) -> Vec<ObjectId> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(&x), Some(&y)) => {
                let next = match x.cmp(&y) {
                    std::cmp::Ordering::Less => ia.next(),
                    std::cmp::Ordering::Greater => ib.next(),
                    std::cmp::Ordering::Equal => {
                        ib.next();
                        ia.next()
                    }
                };
                out.push(next.expect("peeked"));
            }
            (Some(_), None) => {
                out.extend(ia);
                break;
            }
            (None, Some(_)) => {
                out.extend(ib);
                break;
            }
            (None, None) => break,
        }
    }
    out
}

/// GridSync/DBSCAN → Enumerate.
#[derive(Debug, Clone)]
pub(crate) enum PartMsg {
    Part { time: u32, partition: Partition },
    Tick(u32),
    Barrier(Arc<BarrierToken>),
}

/// Enumerate → Sink. Pattern and checkpoint messages carry the emitting
/// subtask so the sink's delivery ledger can classify emissions against an
/// in-flight barrier (FIFO per subtask: everything after a subtask's
/// engine piece is post-cut).
#[derive(Debug, Clone)]
enum OutMsg {
    Pattern {
        subtask: usize,
        pattern: Pattern,
    },
    Done(u32),
    /// One subtask's engine state at the barrier.
    Checkpoint {
        subtask: usize,
        token: Arc<BarrierToken>,
        engine: EngineCheckpoint,
    },
}

// ---- operators -------------------------------------------------------------

/// The align stage: §4 time alignment plus the checkpoint cut. Owns the
/// authoritative record count and the late-drop mirror.
struct AlignBarrierOp {
    aligner: TimeAligner,
    metrics: PipelineMetrics,
    obs: MetricRegistry,
    reported_late: u64,
    records_ingested: u64,
    /// Sealed-snapshot scratch, reused across records and batches (the
    /// per-record `TimeAligner::push` would allocate a vector each call).
    scratch: Vec<Snapshot>,
}

impl AlignBarrierOp {
    fn sync_late_counter(&mut self) {
        let total = self.aligner.late_dropped();
        if total > self.reported_late {
            let dropped = total - self.reported_late;
            self.metrics.mark_late(dropped);
            self.obs
                .emit(ObsEventKind::LateBatchDropped { records: dropped });
            self.reported_late = total;
        }
    }

    /// Drains sealed snapshots accumulated in the scratch into the
    /// collector. Must run before a barrier token is emitted: snapshots
    /// sealed by pre-cut records belong in front of the cut.
    fn emit_sealed(&mut self, out: &mut Collector<AlignMsg>) {
        out.emit_all(self.scratch.drain(..).map(AlignMsg::Snapshot));
        self.sync_late_counter();
    }
}

impl Operator<InputMsg, AlignMsg> for AlignBarrierOp {
    fn process(&mut self, input: InputMsg, out: &mut Collector<AlignMsg>) {
        match input {
            InputMsg::Record(record) => {
                self.records_ingested += 1;
                self.aligner.push_into(record, &mut self.scratch);
                self.emit_sealed(out);
            }
            InputMsg::Batch(records) => {
                self.records_ingested += records.len() as u64;
                for record in records {
                    self.aligner.push_into(record, &mut self.scratch);
                }
                self.emit_sealed(out);
            }
            InputMsg::Barrier(request) => {
                out.emit(AlignMsg::Barrier(Arc::new(BarrierToken {
                    request,
                    aligner: self.aligner.checkpoint(),
                    records_ingested: self.records_ingested,
                    aligner_shards: Mutex::new(Vec::new()),
                    routing: Mutex::new(None),
                    sync: Mutex::new(Vec::new()),
                })));
            }
        }
    }

    fn finish(&mut self, out: &mut Collector<AlignMsg>) {
        out.emit_all(self.aligner.flush().into_iter().map(AlignMsg::Snapshot));
        self.sync_late_counter();
    }
}

/// The frontier router of the sharded head: the one serial subtask. Owns
/// the §4 chains, partitioned by destination shard, and the global seal
/// frontier (a record is late iff its time is below the min over every
/// shard's frontier — a per-shard decision would drop records the serial
/// aligner keeps, or keep records it drops). Per record it does a hash,
/// a chain advance, and a bucket push; the buffering, allocate, and
/// flush work all live on the shards. Also the checkpoint cut: the
/// authoritative record count and the router's chains + counters piece.
struct AlignRouteOp {
    router: ShardedAligner,
    metrics: PipelineMetrics,
    obs: MetricRegistry,
    stats: Arc<AlignStats>,
    reported_late: u64,
    records_ingested: u64,
    /// Per-shard outgoing record buckets of the batch being processed.
    buckets: Vec<Vec<GpsRecord>>,
    /// Times sealed by the batch being processed, ascending.
    sealed: Vec<u32>,
}

impl AlignRouteOp {
    fn ingest_one(&mut self, record: GpsRecord) {
        self.records_ingested += 1;
        match self.router.route(&record) {
            Routed::Keep { shard } => {
                self.buckets[shard].push(record);
                // Drain after every kept record, exactly as the serial
                // aligner drains per push: drain frequency decides when
                // lagging chains retire, and retirement timing is part of
                // the seal semantics the equivalence tests pin.
                self.router.drain_sealed(&mut self.sealed);
            }
            Routed::Late { .. } => {}
        }
    }

    /// Emits the batch's record buckets, then its seal punctuation —
    /// in that order, so a row can never chase its own seal. (A record
    /// of time `t` arriving after `t` sealed within the same batch is
    /// impossible: the router classifies it late the moment `t` seals.)
    fn flush_batch(&mut self, out: &mut Collector<RouteMsg>) {
        for shard in 0..self.buckets.len() {
            if !self.buckets[shard].is_empty() {
                out.emit(RouteMsg::Records {
                    shard: shard as u32,
                    records: std::mem::take(&mut self.buckets[shard]),
                });
            }
        }
        if !self.sealed.is_empty() {
            self.stats.observe_frontiers(&self.router);
            out.emit(RouteMsg::Seal {
                times: std::mem::take(&mut self.sealed),
            });
        }
        self.sync_late_counter();
        self.stats.observe(&self.router);
    }

    fn sync_late_counter(&mut self) {
        let total = self.router.late_dropped_total();
        if total > self.reported_late {
            let dropped = total - self.reported_late;
            self.metrics.mark_late(dropped);
            self.obs
                .emit(ObsEventKind::LateBatchDropped { records: dropped });
            self.reported_late = total;
        }
    }
}

impl Operator<InputMsg, RouteMsg> for AlignRouteOp {
    fn process(&mut self, input: InputMsg, out: &mut Collector<RouteMsg>) {
        match input {
            InputMsg::Record(record) => {
                self.ingest_one(record);
                self.flush_batch(out);
            }
            InputMsg::Batch(records) => {
                for record in records {
                    self.ingest_one(record);
                }
                self.flush_batch(out);
            }
            InputMsg::Barrier(request) => {
                // Buckets and seals of earlier messages are already
                // flushed, so everything sealed before the cut precedes
                // the token on every shard channel.
                out.emit(RouteMsg::Barrier(Arc::new(BarrierToken {
                    request,
                    aligner: self.router.checkpoint(),
                    records_ingested: self.records_ingested,
                    aligner_shards: Mutex::new(Vec::new()),
                    routing: Mutex::new(None),
                    sync: Mutex::new(Vec::new()),
                })));
            }
        }
    }

    fn finish(&mut self, out: &mut Collector<RouteMsg>) {
        // End of stream: seal everything still buffered (plus the gap
        // times an emit-empty aligner owes), mirroring the serial flush.
        let times = self.router.flush_times();
        if !times.is_empty() {
            self.stats.observe_frontiers(&self.router);
            out.emit(RouteMsg::Seal { times });
        }
        self.sync_late_counter();
        self.stats.observe(&self.router);
    }
}

/// One aligner shard with GridAllocate fused in: buffers the rows of its
/// trajectories per snapshot time, and at the router's `Seal` punctuation
/// flushes each listed time through cell assignment (Algorithm 1 — a
/// per-record stateless map, so fusing it here costs the shard nothing
/// extra and removes a serial stage) into one grid-object partial for the
/// snapshot-merge tree. At a barrier it deposits its unsealed rows as a
/// buffer-only checkpoint piece — the only state it holds.
struct AlignShardOp {
    shard: usize,
    grid: Grid,
    eps: f64,
    full_replication: bool,
    /// Buffered rows of this shard's trajectories, keyed by snapshot time.
    buffers: BTreeMap<u32, Snapshot>,
}

impl Operator<RouteMsg, SnapMsg> for AlignShardOp {
    fn process(&mut self, msg: RouteMsg, out: &mut Collector<SnapMsg>) {
        match msg {
            RouteMsg::Records { shard, records } => {
                debug_assert_eq!(
                    shard as usize, self.shard,
                    "records routed to their trajectory's shard"
                );
                for r in records {
                    self.buffers
                        .entry(r.time.0)
                        .or_insert_with(|| Snapshot::new(r.time))
                        .push(r.id, r.location, r.last_time);
                }
            }
            RouteMsg::Seal { times } => {
                for t in times {
                    if let Some(snapshot) = self.buffers.remove(&t) {
                        let mut objects = Vec::new();
                        for e in &snapshot.entries {
                            allocate_one(
                                e.id,
                                e.location,
                                snapshot.time,
                                &self.grid,
                                self.eps,
                                self.full_replication,
                                &mut objects,
                            );
                        }
                        if !objects.is_empty() {
                            out.emit(SnapMsg::Partial {
                                from: self.shard,
                                time: t,
                                objects,
                            });
                        }
                    }
                    // Every shard ticks every sealed time — empty-handed
                    // shards included — so the tree's alignment count is
                    // exact and empty windows still seal downstream.
                    out.emit(SnapMsg::Tick {
                        from: self.shard,
                        time: t,
                    });
                }
            }
            RouteMsg::Barrier(token) => {
                // The rows still buffered here are exactly the cut's
                // unsealed rows of this shard's trajectories; chains,
                // counters, and clock fields travel in the router's piece.
                token
                    .aligner_shards
                    .lock()
                    .expect("aligner shard slot poisoned")
                    .push(AlignerCheckpoint {
                        buffers: self.buffers.values().cloned().collect(),
                        chains: Vec::new(),
                        sealed_up_to: None,
                        max_seen: 0,
                        late_dropped: 0,
                    });
                out.emit(SnapMsg::Barrier {
                    from: self.shard,
                    token,
                });
            }
        }
    }
}

/// An interior combiner of the snapshot-merge tree: concatenates its
/// producers' grid-object partials per window (shards own disjoint
/// trajectories, so concatenation is exact — and the downstream range
/// join is provably object-order-invariant) and forwards one combined
/// partial per window, re-stamped with its own slot index.
struct SnapCombineOp {
    slot: TreeSlot,
    align: TreeWindowAlign<Vec<icpe_cluster::GridObject>>,
}

impl Operator<SnapMsg, SnapMsg> for SnapCombineOp {
    fn process(&mut self, msg: SnapMsg, out: &mut Collector<SnapMsg>) {
        match msg {
            SnapMsg::Partial { time, objects, .. } => self.align.absorb(time, |acc| {
                if acc.is_empty() {
                    *acc = objects;
                } else {
                    acc.extend(objects);
                }
            }),
            SnapMsg::Tick { time, .. } => {
                if let Some(objects) = self.align.tick(time) {
                    if !objects.is_empty() {
                        out.emit(SnapMsg::Partial {
                            from: self.slot.subtask,
                            time,
                            objects,
                        });
                    }
                    out.emit(SnapMsg::Tick {
                        from: self.slot.subtask,
                        time,
                    });
                }
            }
            SnapMsg::Barrier { token, .. } => {
                if self.align.barrier(token.request.seq) {
                    out.emit(SnapMsg::Barrier {
                        from: self.slot.subtask,
                        token,
                    });
                }
            }
        }
    }
}

/// The root of the snapshot-merge tree: the one subtask upstream of the
/// keyed grid exchange, and therefore — in adaptive mode — the
/// rebalancing controller: the only place a routing swap can be ordered
/// strictly between two windows' objects. Also the latency ingest point:
/// a window's clock starts when it leaves here, complete.
struct SnapFinalOp {
    metrics: PipelineMetrics,
    obs: MetricRegistry,
    /// `Some` in adaptive mode (owned here; single subtask).
    balancer: Option<LoadBalancer>,
    table: Arc<RoutingTable>,
    tracker: Arc<LoadTracker>,
    align: TreeWindowAlign<Vec<icpe_cluster::GridObject>>,
    /// Sub-cell refinement context: the same grid geometry and replication
    /// mode the aligner shards allocate with, so hot-cell objects can be
    /// re-keyed onto the balancer's current sub-cell tier here — at the
    /// window boundary, strictly after any split/coalesce lands.
    grid: Grid,
    eps: f64,
    full_replication: bool,
}

impl SnapFinalOp {
    /// Window-boundary rebalancing: runs before a window's objects are
    /// emitted, so a new epoch takes effect exactly at the boundary —
    /// every window's cells route under a single epoch. Takes and returns
    /// the window's objects because the boundary is two-phase: the
    /// refinement tree updates first, the objects are re-keyed onto it,
    /// and only then does placement plan — on the *exact* per-cell record
    /// distribution of the window it is about to route (including the
    /// true per-leaf split of freshly refined cells, which no decayed
    /// history could supply).
    fn maybe_rebalance(
        &mut self,
        objects: Vec<icpe_cluster::GridObject>,
    ) -> Vec<icpe_cluster::GridObject> {
        let Some(balancer) = &mut self.balancer else {
            return objects;
        };
        let (split_cells, coalesced_cells, unpinned) = balancer.refine_boundary();
        // Re-key onto the sub-cell tier: splits/coalesces land strictly
        // between windows, so every window's objects are keyed under
        // exactly one tree.
        let objects = if balancer.refinement().is_empty() {
            objects
        } else {
            refine_expand(
                objects,
                &self.grid,
                balancer.refinement(),
                self.eps,
                self.full_replication,
            )
        };
        // Two feedback cadences, folded separately: this stage counts the
        // outgoing window's records exactly, at the routing point, while
        // the query stage's pair counts — which exist nowhere upstream of
        // the range join — arrive whole-windows-at-a-time with the
        // pipeline's in-flight lag (in bursts, when backpressure stalls
        // this stage) — each sealed window is decay-folded on its own so
        // a burst cannot whipsaw the estimates.
        let mut records: HashMap<GridKey, u64> = HashMap::new();
        for o in &objects {
            *records.entry(o.key).or_default() += 1;
        }
        balancer.observe_records(&records);
        let drained = self.tracker.drain_cells();
        for (_, cells) in drained {
            balancer.observe_pairs_window(&cells);
        }
        if let Some(outcome) = balancer.place(split_cells, coalesced_cells, unpinned) {
            self.table
                .note_window_loads(outcome.max_load, outcome.mean_load);
            for &(base, depth) in &outcome.split_cells {
                self.obs.emit(ObsEventKind::CellSplit {
                    x: base.x,
                    y: base.y,
                    depth,
                });
            }
            for &(base, depth) in &outcome.coalesced_cells {
                self.obs.emit(ObsEventKind::CellCoalesced {
                    x: base.x,
                    y: base.y,
                    depth,
                });
            }
            if let Some(plan) = outcome.plan {
                self.obs.emit(ObsEventKind::CellMigrated {
                    epoch: plan.epoch,
                    cells: plan.migrated,
                });
                self.table
                    .install(plan.epoch, plan.assignments, plan.migrated);
            }
            let tree = balancer.refinement();
            self.table.note_refinement(
                tree.refined_cells(),
                tree.max_depth(),
                balancer.splits(),
                balancer.coalesces(),
            );
        }
        objects
    }
}

impl Operator<SnapMsg, ClusterMsg> for SnapFinalOp {
    fn process(&mut self, msg: SnapMsg, out: &mut Collector<ClusterMsg>) {
        match msg {
            SnapMsg::Partial { time, objects, .. } => self.align.absorb(time, |acc| {
                if acc.is_empty() {
                    *acc = objects;
                } else {
                    acc.extend(objects);
                }
            }),
            SnapMsg::Tick { time, .. } => {
                if let Some(objects) = self.align.tick(time) {
                    // Empty windows run the full boundary protocol too —
                    // the balancer cadence and the downstream tick fabric
                    // match the serial head's empty snapshots exactly.
                    let objects = self.maybe_rebalance(objects);
                    self.metrics.mark_ingest(time);
                    out.emit_all(objects.into_iter().map(ClusterMsg::Obj));
                    out.emit(ClusterMsg::Tick(time));
                }
            }
            SnapMsg::Barrier { token, .. } => {
                if self.align.barrier(token.request.seq) {
                    if let Some(balancer) = &self.balancer {
                        *token.routing.lock().expect("routing slot poisoned") =
                            Some(balancer.checkpoint());
                    }
                    out.emit(ClusterMsg::Barrier(token));
                }
            }
        }
    }
}

/// GridQuery (Algorithm 2) as a keyed operator: one subtask owns many cells;
/// objects buffer per (time, cell) and the range queries run at the
/// snapshot-boundary tick. Each flush accounts the subtask's per-cell load
/// (buffered objects + produced pairs) into the shared [`LoadTracker`] —
/// the signal the adaptive balancer repartitions on.
struct QueryOp {
    eps: f64,
    metric: DistanceMetric,
    build_then_query: bool,
    subtask: usize,
    tracker: Arc<LoadTracker>,
    buffers: BTreeMap<u32, HashMap<GridKey, Vec<icpe_cluster::GridObject>>>,
    /// Per-cell pair scratch, reused across cells and ticks (the emitted
    /// vector must be owned, but the hot per-cell buffer need not churn).
    cell_pairs: Vec<NeighborPair>,
    /// Per-shard outgoing pair bundles: produced pairs partition by the
    /// owning sync shard (`subtask_for(hash_id(pair.0), shards)`), one
    /// bundle message per non-empty shard per window flush.
    shard_pairs: Vec<Vec<NeighborPair>>,
    /// SRJ bulk-load scratch, reused across cells and ticks.
    items: Vec<(icpe_types::Point, ObjectId)>,
    /// SRJ per-probe hit scratch (owned ids), reused across probes.
    hits: Vec<ObjectId>,
}

impl QueryOp {
    fn new(
        eps: f64,
        metric: DistanceMetric,
        build_then_query: bool,
        subtask: usize,
        shards: usize,
        tracker: Arc<LoadTracker>,
    ) -> Self {
        QueryOp {
            eps,
            metric,
            build_then_query,
            subtask,
            tracker,
            buffers: BTreeMap::new(),
            cell_pairs: Vec::new(),
            shard_pairs: vec![Vec::new(); shards.max(1)],
            items: Vec::new(),
            hits: Vec::new(),
        }
    }

    fn flush_time(&mut self, t: u32, out: &mut Collector<PairMsg>) {
        let shards = self.shard_pairs.len();
        let mut window_load = 0u64;
        if let Some(cells) = self.buffers.remove(&t) {
            for (cell, objects) in cells {
                self.cell_pairs.clear();
                if self.build_then_query {
                    // SRJ: build the complete local index, then query every
                    // object against it.
                    self.items.clear();
                    self.items.extend(
                        objects
                            .iter()
                            .filter(|o| !o.is_query)
                            .map(|o| (o.location, o.id)),
                    );
                    let tree = RTree::bulk_load_with_max_entries(16, &mut self.items);
                    for o in &objects {
                        self.hits.clear();
                        tree.query_payloads_within(
                            &o.location,
                            self.eps,
                            self.metric,
                            &mut self.hits,
                        );
                        for &other in &self.hits {
                            if other != o.id {
                                self.cell_pairs
                                    .push(icpe_cluster::query::canonical(o.id, other));
                            }
                        }
                    }
                } else {
                    // RJC: Lemma-2 interleaved query-then-insert.
                    let mut engine = CellQueryEngine::new(self.eps, self.metric);
                    engine.run_cell(&objects, &mut self.cell_pairs);
                }
                window_load += objects.len() as u64 + self.cell_pairs.len() as u64;
                self.tracker.record_cell(
                    t,
                    cell,
                    CellLoad {
                        records: objects.len() as u64,
                        pairs: self.cell_pairs.len() as u64,
                    },
                );
                for &pair in &self.cell_pairs {
                    self.shard_pairs[subtask_for(hash_id(pair.0), shards)].push(pair);
                }
            }
        }
        self.tracker.record_window(t, self.subtask, window_load);
        for shard in 0..shards {
            if !self.shard_pairs[shard].is_empty() {
                out.emit(PairMsg::Pairs {
                    shard: shard as u32,
                    time: t,
                    pairs: std::mem::take(&mut self.shard_pairs[shard]),
                });
            }
        }
        out.emit(PairMsg::Tick(t));
    }
}

impl Operator<ClusterMsg, PairMsg> for QueryOp {
    fn process(&mut self, msg: ClusterMsg, out: &mut Collector<PairMsg>) {
        match msg {
            ClusterMsg::Obj(o) => {
                self.buffers
                    .entry(o.time.0)
                    .or_default()
                    .entry(o.key)
                    .or_default()
                    .push(o);
            }
            ClusterMsg::Tick(t) => self.flush_time(t, out),
            // The barrier trails every sealed snapshot's tick, and ticks
            // flush the per-time buffers — so at this point the subtask
            // holds no state belonging to the cut. Forward.
            ClusterMsg::Barrier(token) => out.emit(PairMsg::Barrier(token)),
        }
    }

    fn finish(&mut self, out: &mut Collector<PairMsg>) {
        let times: Vec<u32> = self.buffers.keys().copied().collect();
        for t in times {
            self.flush_time(t, out);
        }
    }
}

/// One GridSync shard: owns the pair partitions whose owner id hashes to
/// it, deduplicates them with a [`PairCollector`] per open window, and at
/// the window's last upstream tick forwards its sorted share (pairs +
/// mentioned object ids) into the aggregation tree. The paper centralizes
/// this step; sharding it is what breaks the dataflow's serial tail — the
/// per-pair hash-set dedup, previously one funnel subtask's job, now runs
/// at the full keyed-stage parallelism.
struct ShardSyncOp {
    shard: usize,
    /// Upstream query subtasks (tick/barrier alignment count).
    upstream: usize,
    stats: Arc<SyncStats>,
    /// Cumulative counters, authoritative for this shard's checkpoint
    /// piece (the shared `stats` only mirror them for live gauges).
    pairs_merged: u64,
    duplicates: u64,
    pending: BTreeMap<u32, (PairCollector, usize)>,
    /// Barrier alignment: seq → barriers received from upstream subtasks.
    barriers: HashMap<u64, usize>,
}

impl ShardSyncOp {
    /// Builds shard `shard` of `n`, rehydrating from a checkpoint's merged
    /// sync section when one is given: pending pairs owner-filter onto the
    /// shards that route them at this parallelism; the cumulative counters
    /// restore into shard 0 only (the next checkpoint's merge would
    /// otherwise multiply them by `n` — the engine `skipped_partitions`
    /// pattern). Restored pending windows reset their tick counts: the
    /// counts belong to the old deployment's upstream width, and the
    /// replayed input re-delivers every tick of an unsealed window.
    fn build(
        shard: usize,
        n: usize,
        stats: Arc<SyncStats>,
        resume: Option<&SyncCheckpoint>,
    ) -> Self {
        let mut op = ShardSyncOp {
            shard,
            upstream: n,
            stats,
            pairs_merged: 0,
            duplicates: 0,
            pending: BTreeMap::new(),
            barriers: HashMap::new(),
        };
        if let Some(ckpt) = resume {
            let piece = ckpt.piece(shard == 0, |owner| subtask_for(hash_id(owner), n) == shard);
            op.pairs_merged = piece.pairs_merged;
            op.duplicates = piece.duplicates;
            for w in piece.pending {
                let mut collector = PairCollector::new();
                collector.extend(w.pairs);
                op.pending.insert(w.time, (collector, 0));
            }
        }
        op
    }

    /// This shard's checkpoint piece at a barrier.
    fn piece(&self) -> SyncCheckpoint {
        debug_assert!(
            self.pending.is_empty(),
            "the barrier trails every sealed window's ticks, so a shard \
             holds no window state at the cut"
        );
        SyncCheckpoint {
            pairs_merged: self.pairs_merged,
            duplicates: self.duplicates,
            windows_sealed: 0,
            pending: self
                .pending
                .iter()
                .map(|(&time, (collector, _))| SyncWindowCheckpoint {
                    time,
                    pairs: collector.snapshot_pairs(),
                })
                .collect(),
        }
    }
}

impl Operator<PairMsg, MergeMsg> for ShardSyncOp {
    fn process(&mut self, msg: PairMsg, out: &mut Collector<MergeMsg>) {
        match msg {
            PairMsg::Pairs { shard, time, pairs } => {
                debug_assert_eq!(
                    shard as usize, self.shard,
                    "pairs routed to their owner shard"
                );
                let entry = self.pending.entry(time).or_default();
                entry.0.extend(pairs);
            }
            PairMsg::Tick(t) => {
                let entry = self.pending.entry(t).or_default();
                entry.1 += 1;
                if entry.1 == self.upstream {
                    let (collector, _) = self.pending.remove(&t).unwrap();
                    let duplicates = collector.duplicates() as u64;
                    let pairs = collector.into_pairs();
                    // The object-id union of this shard's pairs, computed
                    // here (in parallel across shards) so the finalizer
                    // only merges sorted lists instead of sorting the
                    // whole window's ids serially.
                    let mut objects: Vec<ObjectId> =
                        pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
                    objects.sort_unstable();
                    objects.dedup();
                    self.pairs_merged += pairs.len() as u64;
                    self.duplicates += duplicates;
                    self.stats
                        .note_shard_window(t, self.shard, pairs.len() as u64, duplicates);
                    out.emit(MergeMsg::Partial {
                        from: self.shard,
                        time: t,
                        pairs,
                        objects,
                    });
                    out.emit(MergeMsg::Tick {
                        from: self.shard,
                        time: t,
                    });
                }
            }
            PairMsg::Barrier(token) => {
                // Classic barrier alignment: forward only once every
                // upstream query subtask's barrier copy arrived — by then
                // all pre-cut pairs have been collected and flushed.
                let count = self.barriers.entry(token.request.seq).or_insert(0);
                *count += 1;
                if *count == self.upstream {
                    self.barriers.remove(&token.request.seq);
                    token
                        .sync
                        .lock()
                        .expect("sync slot poisoned")
                        .push(self.piece());
                    out.emit(MergeMsg::Barrier {
                        from: self.shard,
                        token,
                    });
                }
            }
        }
    }
}

/// Per-window accumulator of one sync aggregation-tree slot.
#[derive(Debug, Default)]
struct MergeAcc {
    pairs: Vec<NeighborPair>,
    objects: Vec<ObjectId>,
}

impl MergeAcc {
    fn absorb(&mut self, pairs: Vec<NeighborPair>, objects: Vec<ObjectId>) {
        // Shards own disjoint pair sets, so concatenation is exact; the
        // object lists can overlap across shards and merge sorted.
        if self.pairs.is_empty() {
            self.pairs = pairs;
        } else {
            self.pairs.extend(pairs);
        }
        self.objects = merge_sorted_ids(std::mem::take(&mut self.objects), objects);
    }
}

/// The per-slot alignment state every aggregation-tree operator shares —
/// generic over the window accumulator, so the sync tree (pair partials)
/// and the snapshot-merge tree (grid-object partials) run the identical
/// protocol: open-window accumulators sealed at the `inputs`-th tick, and
/// barrier copies counted to the same width. A fix to alignment semantics
/// lands in exactly one place for combiners and finalizers of both trees.
struct TreeWindowAlign<A> {
    inputs: usize,
    pending: BTreeMap<u32, (A, usize)>,
    barriers: HashMap<u64, usize>,
}

impl<A: Default> TreeWindowAlign<A> {
    fn new(inputs: usize) -> Self {
        TreeWindowAlign {
            inputs,
            pending: BTreeMap::new(),
            barriers: HashMap::new(),
        }
    }

    /// Absorbs one producer's partial for window `time`.
    fn absorb(&mut self, time: u32, fold: impl FnOnce(&mut A)) {
        fold(&mut self.pending.entry(time).or_default().0);
    }

    /// Counts one producer's tick for window `time`; returns the sealed
    /// accumulator once every input has ticked.
    fn tick(&mut self, time: u32) -> Option<A> {
        let entry = self.pending.entry(time).or_default();
        entry.1 += 1;
        (entry.1 == self.inputs).then(|| self.pending.remove(&time).expect("window present").0)
    }

    /// Counts one producer's barrier copy; returns `true` once the
    /// barrier has aligned (every input delivered its copy), at which
    /// point no window state can remain open at this slot.
    fn barrier(&mut self, seq: u64) -> bool {
        let count = self.barriers.entry(seq).or_insert(0);
        *count += 1;
        if *count < self.inputs {
            return false;
        }
        self.barriers.remove(&seq);
        debug_assert!(
            self.pending.is_empty(),
            "aligned barriers trail every sealed window at every tree level"
        );
        true
    }
}

/// An interior combiner of the sync aggregation tree: merges the partial
/// windows of its [`TreeSlot::inputs`] producers and forwards one combined
/// partial per window, re-stamped with its own slot index. Barriers align
/// here exactly as at the shards, so the cut stays consistent at every
/// tree level.
struct MergeCombineOp {
    slot: TreeSlot,
    align: TreeWindowAlign<MergeAcc>,
}

impl Operator<MergeMsg, MergeMsg> for MergeCombineOp {
    fn process(&mut self, msg: MergeMsg, out: &mut Collector<MergeMsg>) {
        match msg {
            MergeMsg::Partial {
                time,
                pairs,
                objects,
                ..
            } => self.align.absorb(time, |acc| acc.absorb(pairs, objects)),
            MergeMsg::Tick { time, .. } => {
                if let Some(acc) = self.align.tick(time) {
                    out.emit(MergeMsg::Partial {
                        from: self.slot.subtask,
                        time,
                        pairs: acc.pairs,
                        objects: acc.objects,
                    });
                    out.emit(MergeMsg::Tick {
                        from: self.slot.subtask,
                        time,
                    });
                }
            }
            MergeMsg::Barrier { token, .. } => {
                if self.align.barrier(token.request.seq) {
                    out.emit(MergeMsg::Barrier {
                        from: self.slot.subtask,
                        token,
                    });
                }
            }
        }
    }
}

/// The root of the sync aggregation tree: merges the last partials, runs
/// DBSCAN over the window's global pair set and seals the window —
/// id-partitioning the clusters for the keyed enumeration stage, exactly
/// what the centralized GridSync funnel used to do, minus the dedup work
/// the shards already absorbed.
struct MergeFinalOp {
    m: usize,
    dbscan: DbscanParams,
    stats: Arc<SyncStats>,
    /// Cumulative window-seal counter, authoritative for the finalizer's
    /// checkpoint piece.
    windows_sealed: u64,
    align: TreeWindowAlign<MergeAcc>,
}

impl Operator<MergeMsg, PartMsg> for MergeFinalOp {
    fn process(&mut self, msg: MergeMsg, out: &mut Collector<PartMsg>) {
        match msg {
            MergeMsg::Partial {
                time,
                pairs,
                objects,
                ..
            } => self.align.absorb(time, |acc| acc.absorb(pairs, objects)),
            MergeMsg::Tick { time, .. } => {
                if let Some(acc) = self.align.tick(time) {
                    let outcome =
                        dbscan_from_pairs(Timestamp(time), &acc.objects, &acc.pairs, &self.dbscan);
                    for partition in id_partitions(&outcome.snapshot, self.m) {
                        out.emit(PartMsg::Part { time, partition });
                    }
                    out.emit(PartMsg::Tick(time));
                    self.windows_sealed += 1;
                    self.stats.note_window_sealed();
                }
            }
            MergeMsg::Barrier { token, .. } => {
                if self.align.barrier(token.request.seq) {
                    token
                        .sync
                        .lock()
                        .expect("sync slot poisoned")
                        .push(SyncCheckpoint {
                            pairs_merged: 0,
                            duplicates: 0,
                            windows_sealed: self.windows_sealed,
                            pending: Vec::new(),
                        });
                    out.emit(PartMsg::Barrier(token));
                }
            }
        }
    }
}

/// GDC (centralized) clustering straight from snapshots to partitions.
struct GdcOp {
    clusterer: GdcClusterer,
    m: usize,
    metrics: PipelineMetrics,
}

impl Operator<AlignMsg, PartMsg> for GdcOp {
    fn process(&mut self, msg: AlignMsg, out: &mut Collector<PartMsg>) {
        let snapshot = match msg {
            AlignMsg::Snapshot(s) => s,
            AlignMsg::Barrier(token) => {
                out.emit(PartMsg::Barrier(token));
                return;
            }
        };
        self.metrics.mark_ingest(snapshot.time.0);
        let t = snapshot.time.0;
        let clusters: ClusterSnapshot = self.clusterer.cluster(&snapshot);
        for partition in id_partitions(&clusters, self.m) {
            out.emit(PartMsg::Part { time: t, partition });
        }
        out.emit(PartMsg::Tick(t));
    }
}

/// One enumeration subtask: owns the engines' state for the owner ids routed
/// to it, advances time on broadcast ticks.
struct EnumerateOp {
    subtask: usize,
    engine: Box<dyn PatternEngine + Send>,
    pending: HashMap<u32, Vec<Partition>>,
}

impl Operator<PartMsg, OutMsg> for EnumerateOp {
    fn process(&mut self, msg: PartMsg, out: &mut Collector<OutMsg>) {
        match msg {
            PartMsg::Part { time, partition } => {
                self.pending.entry(time).or_default().push(partition);
            }
            PartMsg::Tick(t) => {
                let parts = self.pending.remove(&t).unwrap_or_default();
                let patterns = self.engine.push_partitions(Timestamp(t), parts);
                let subtask = self.subtask;
                out.emit_all(
                    patterns
                        .into_iter()
                        .map(|pattern| OutMsg::Pattern { subtask, pattern }),
                );
                out.emit(OutMsg::Done(t));
            }
            PartMsg::Barrier(token) => {
                // At the barrier this subtask has ticked through exactly
                // the snapshots sealed before the cut; its engine state is
                // the consistent one to capture.
                let engine = self
                    .engine
                    .checkpoint()
                    .expect("pipeline engines support checkpointing");
                out.emit(OutMsg::Checkpoint {
                    subtask: self.subtask,
                    token,
                    engine,
                });
            }
        }
    }

    fn finish(&mut self, out: &mut Collector<OutMsg>) {
        let patterns = self.engine.finish();
        let subtask = self.subtask;
        out.emit_all(
            patterns
                .into_iter()
                .map(|pattern| OutMsg::Pattern { subtask, pattern }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_pattern::unique_object_sets;
    use icpe_types::{Constraints, Point};

    /// Three co-walking objects + two wanderers, as pre-discretized records.
    fn walking_records(ticks: u32) -> Vec<GpsRecord> {
        let mut out = Vec::new();
        for t in 0..ticks {
            let base = t as f64 * 0.5;
            let last = if t == 0 { None } else { Some(Timestamp(t - 1)) };
            for (id, p) in [
                (1u32, Point::new(base, 0.0)),
                (2, Point::new(base + 0.3, 0.3)),
                (3, Point::new(base + 0.6, 0.0)),
                (8, Point::new(100.0 + base, 50.0)),
                (9, Point::new(-100.0, 50.0 - base)),
            ] {
                out.push(GpsRecord::new(ObjectId(id), p, Timestamp(t), last));
            }
        }
        out
    }

    fn config(n: usize, enumerator: EnumeratorKind) -> IcpeConfig {
        IcpeConfig::builder()
            .constraints(Constraints::new(3, 4, 2, 2).unwrap())
            .epsilon(1.0)
            .min_pts(3)
            .parallelism(n)
            .enumerator(enumerator)
            .build()
            .unwrap()
    }

    #[test]
    fn pipeline_detects_the_walking_group() {
        for kind in [
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
            EnumeratorKind::Baseline,
        ] {
            let out = IcpePipeline::run(&config(3, kind), walking_records(10));
            let sets = unique_object_sets(&out.patterns);
            assert!(
                sets.contains(&vec![ObjectId(1), ObjectId(2), ObjectId(3)]),
                "{kind:?}: {sets:?}"
            );
            assert_eq!(out.metrics.snapshots, 10);
        }
    }

    #[test]
    fn pipeline_matches_sync_engine() {
        let cfg = config(4, EnumeratorKind::Fba);
        let out = IcpePipeline::run(&cfg, walking_records(12));
        let pipeline_sets = unique_object_sets(&out.patterns);

        let mut engine = crate::engine::IcpeEngine::new(cfg);
        let mut patterns = Vec::new();
        for t in 0..12u32 {
            let base = t as f64 * 0.5;
            let snap = Snapshot::from_pairs(
                Timestamp(t),
                [
                    (ObjectId(1), Point::new(base, 0.0)),
                    (ObjectId(2), Point::new(base + 0.3, 0.3)),
                    (ObjectId(3), Point::new(base + 0.6, 0.0)),
                    (ObjectId(8), Point::new(100.0 + base, 50.0)),
                    (ObjectId(9), Point::new(-100.0, 50.0 - base)),
                ],
            );
            patterns.extend(engine.push_snapshot(snap));
        }
        patterns.extend(engine.finish());
        assert_eq!(pipeline_sets, unique_object_sets(&patterns));
    }

    #[test]
    fn pipeline_parallelism_does_not_change_results() {
        let base = unique_object_sets(
            &IcpePipeline::run(&config(1, EnumeratorKind::Fba), walking_records(10)).patterns,
        );
        for n in [2, 4, 8] {
            let out = IcpePipeline::run(&config(n, EnumeratorKind::Fba), walking_records(10));
            assert_eq!(unique_object_sets(&out.patterns), base, "N = {n}");
        }
    }

    #[test]
    fn sync_tree_fanin_does_not_change_results() {
        let base = unique_object_sets(
            &IcpePipeline::run(&config(1, EnumeratorKind::Fba), walking_records(10)).patterns,
        );
        for fanin in [2usize, 3, 8] {
            let cfg = IcpeConfig::builder()
                .constraints(Constraints::new(3, 4, 2, 2).unwrap())
                .epsilon(1.0)
                .min_pts(3)
                .parallelism(8)
                .sync_fanin(fanin)
                .enumerator(EnumeratorKind::Fba)
                .build()
                .unwrap();
            let out = IcpePipeline::run(&cfg, walking_records(10));
            assert_eq!(unique_object_sets(&out.patterns), base, "fanin = {fanin}");
        }
    }

    #[test]
    fn sync_gauges_report_the_sharded_merge() {
        let live = IcpePipeline::launch(&config(4, EnumeratorKind::Fba), |_| {});
        let sync = live.sync().expect("grid clusterer has a sync path").clone();
        for r in walking_records(10) {
            live.push(r).unwrap();
        }
        live.finish();
        let status = sync.status();
        assert_eq!(status.shards, 4);
        assert_eq!(status.fanin, crate::config::DEFAULT_SYNC_FANIN);
        assert_eq!(status.levels, 0, "4 shards at fanin 4 is a flat funnel");
        assert_eq!(status.windows_sealed, 10);
        assert!(
            status.pairs_merged > 0,
            "the walking trio produces pairs every window: {status:?}"
        );

        // A deeper tree exposes interior levels.
        let cfg = IcpeConfig::builder()
            .constraints(Constraints::new(3, 4, 2, 2).unwrap())
            .epsilon(1.0)
            .min_pts(3)
            .parallelism(8)
            .sync_fanin(2)
            .build()
            .unwrap();
        let live = IcpePipeline::launch(&cfg, |_| {});
        let status = live.sync_status().expect("sync path");
        assert_eq!(status.levels, 2, "8 → 4 → 2 → final");
        for r in walking_records(6) {
            live.push(r).unwrap();
        }
        live.finish();
    }

    #[test]
    fn pipeline_srj_and_gdc_agree_with_rjc() {
        let mk = |kind: ClustererKind| {
            let cfg = IcpeConfig::builder()
                .constraints(Constraints::new(3, 4, 2, 2).unwrap())
                .epsilon(1.0)
                .min_pts(3)
                .parallelism(2)
                .clusterer(kind)
                .build()
                .unwrap();
            unique_object_sets(&IcpePipeline::run(&cfg, walking_records(10)).patterns)
        };
        let rjc = mk(ClustererKind::Rjc);
        assert_eq!(mk(ClustererKind::Srj), rjc);
        assert_eq!(mk(ClustererKind::Gdc), rjc);
    }

    #[test]
    fn pipeline_handles_out_of_order_records() {
        // Swap some records around within a small window; the aligner must
        // still produce identical results.
        let mut records = walking_records(10);
        let n = records.len();
        for i in (0..n - 3).step_by(3) {
            records.swap(i, i + 3);
        }
        let out = IcpePipeline::run(&config(2, EnumeratorKind::Fba), records);
        let sets = unique_object_sets(&out.patterns);
        assert!(sets.contains(&vec![ObjectId(1), ObjectId(2), ObjectId(3)]));
    }

    #[test]
    fn empty_input_produces_nothing() {
        let out = IcpePipeline::run(&config(2, EnumeratorKind::Fba), Vec::new());
        assert!(out.patterns.is_empty());
        assert_eq!(out.metrics.snapshots, 0);
    }

    /// Records whose hot cells all hash-route to one GridQuery subtask:
    /// co-walking triples parked at cell centers chosen (at grid width
    /// `8.0`, parallelism `n`) to collide under `hash(cell) % n` — the
    /// skew adaptive routing exists to fix.
    fn colliding_hot_records(n: usize, groups: usize, ticks: u32) -> Vec<GpsRecord> {
        let grid = Grid::new(8.0);
        let target = subtask_for(
            stable_hash(&grid.key_of(icpe_types::Point::new(4.0, 4.0))),
            n,
        );
        let mut centers = Vec::new();
        let mut x = 4.0f64;
        while centers.len() < groups {
            let p = icpe_types::Point::new(x, 4.0);
            if subtask_for(stable_hash(&grid.key_of(p)), n) == target {
                centers.push(p);
            }
            x += 8.0;
        }
        let mut out = Vec::new();
        for t in 0..ticks {
            let last = if t == 0 { None } else { Some(Timestamp(t - 1)) };
            for (g, c) in centers.iter().enumerate() {
                for k in 0..3u32 {
                    let id = ObjectId(100 * (g as u32 + 1) + k);
                    let p = icpe_types::Point::new(c.x + 0.3 * k as f64, c.y + 0.2 * k as f64);
                    out.push(GpsRecord::new(id, p, Timestamp(t), last));
                }
            }
        }
        out
    }

    #[test]
    fn adaptive_routing_migrates_hot_cells_and_preserves_results() {
        let n = 4;
        let records = colliding_hot_records(n, 6, 16);
        let static_cfg = config(n, EnumeratorKind::Fba);
        let want = unique_object_sets(&IcpePipeline::run(&static_cfg, records.clone()).patterns);
        assert!(!want.is_empty(), "the hot groups must co-move");

        let adaptive_cfg = IcpeConfig::builder()
            .constraints(Constraints::new(3, 4, 2, 2).unwrap())
            .epsilon(1.0)
            .min_pts(3)
            .parallelism(n)
            .enumerator(EnumeratorKind::Fba)
            .rebalance(icpe_cluster::BalancerConfig {
                theta: 1.1,
                cooldown_windows: 0,
                ..icpe_cluster::BalancerConfig::default()
            })
            .build()
            .unwrap();
        let got: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        let live = IcpePipeline::launch(&adaptive_cfg, move |e| {
            if let PipelineEvent::Pattern(p) = e {
                sink.lock().unwrap().push(p);
            }
        });
        let routing = live.routing().expect("grid clusterer has routing").clone();
        for r in &records {
            live.push(*r).unwrap();
        }
        live.finish();

        assert_eq!(
            unique_object_sets(&got.lock().unwrap()),
            want,
            "adaptive and static routing seal the same patterns"
        );
        let status = routing.status();
        assert!(
            status.epoch > 0,
            "colliding hot cells must trigger a rebalance: {status:?}"
        );
        assert!(status.cells_migrated > 0);

        // The placement actually helps. Under static `hash(cell) % N`
        // routing every hot cell collides on one subtask (imbalance = N);
        // after migration the late windows must sit far below that. (With
        // micro-batched hops the swap can even land before the first
        // window routes — windows co-batched with the decision route under
        // the new epoch — so the first window may already be balanced and
        // a falling-series assertion would be vacuous.)
        let series = routing.imbalance_series();
        let last = series.last().expect("windows sealed").1;
        assert!(
            last < n as f64 / 2.0,
            "late windows must be balanced well below the colliding static \
             placement (imbalance {n}): {series:?}"
        );
    }

    #[test]
    fn live_launch_delivers_patterns_and_seal_events() {
        let events: Arc<Mutex<Vec<PipelineEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let live = IcpePipeline::launch(&config(3, EnumeratorKind::Fba), move |e| {
            sink.lock().unwrap().push(e);
        });
        for r in walking_records(10) {
            live.push(r).unwrap();
        }
        let report = live.finish();
        assert_eq!(report.snapshots, 10);

        let events = events.lock().unwrap();
        let sealed: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                PipelineEvent::SnapshotSealed { time } => Some(*time),
                _ => None,
            })
            .collect();
        assert_eq!(sealed, (0..10).collect::<Vec<_>>(), "sealed in order");
        let patterns: Vec<Pattern> = events
            .iter()
            .filter_map(|e| match e {
                PipelineEvent::Pattern(p) => Some(p.clone()),
                _ => None,
            })
            .collect();
        let sets = unique_object_sets(&patterns);
        assert!(sets.contains(&vec![ObjectId(1), ObjectId(2), ObjectId(3)]));
    }

    #[test]
    fn live_launch_supports_many_producers() {
        let live = IcpePipeline::launch(&config(2, EnumeratorKind::Fba), |_| {});
        let records = walking_records(12);
        // Interleave the stream across four concurrent producers, keyed so
        // each object's records stay with one producer (preserving per-id
        // order, as TCP connections do).
        let mut handles = Vec::new();
        for p in 0..4u32 {
            let sender = live.sender();
            let my_records: Vec<GpsRecord> = records
                .iter()
                .filter(|r| r.id.0 % 4 == p)
                .copied()
                .collect();
            handles.push(std::thread::spawn(move || {
                for r in my_records {
                    sender.push(r).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let report = live.finish();
        assert_eq!(report.snapshots, 12);
    }

    #[test]
    fn live_progress_gauges_advance() {
        let live = IcpePipeline::launch(&config(1, EnumeratorKind::Fba), |_| {});
        for r in walking_records(8) {
            live.push(r).unwrap();
        }
        let before = live.progress();
        let report = live.finish();
        assert_eq!(report.snapshots, 8);
        // After finish, everything ingested has sealed.
        assert!(before.max_ingested.unwrap_or(0) <= 7);
    }

    #[test]
    fn live_checkpoint_names_the_exact_cut() {
        let live = IcpePipeline::launch(&config(2, EnumeratorKind::Fba), |_| {});
        let records = walking_records(10);
        for r in &records[..25] {
            live.push(*r).unwrap();
        }
        let ckpt = live.checkpoint().unwrap();
        assert_eq!(ckpt.version, CHECKPOINT_VERSION);
        assert_eq!(ckpt.seq, 1);
        assert_eq!(
            ckpt.records_ingested, 25,
            "the barrier trails exactly the pushed records"
        );
        assert_eq!(ckpt.engine.kind, "FBA");
        let sync = ckpt.sync.as_ref().expect("grid clusterers checkpoint sync");
        assert!(
            sync.pending.is_empty(),
            "aligned barriers leave no open sync windows"
        );
        assert_eq!(
            sync.windows_sealed,
            ckpt.aligner.sealed_up_to.unwrap_or(0) as u64,
            "every snapshot the aligner sealed before the cut has flowed \
             through the merge tree by the time the barrier aligns there"
        );
        // A second checkpoint advances the sequence.
        for r in &records[25..30] {
            live.push(*r).unwrap();
        }
        let ckpt2 = live.checkpoint().unwrap();
        assert_eq!(ckpt2.seq, 2);
        assert_eq!(ckpt2.records_ingested, 30);
        for r in &records[30..] {
            live.push(*r).unwrap();
        }
        let report = live.finish();
        assert_eq!(report.snapshots, 10);
    }

    #[test]
    fn checkpoint_restore_resumes_the_live_run() {
        // Push half the stream, checkpoint, "crash" (drop), restore into a
        // new pipeline, push the rest: pattern sets must match an
        // uninterrupted run.
        let cfg = config(3, EnumeratorKind::Fba);
        let records = walking_records(12);
        let full = IcpePipeline::run(&cfg, records.clone());
        let want = unique_object_sets(&full.patterns);

        let pre: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&pre);
        let live = IcpePipeline::launch(&cfg, move |e| {
            if let PipelineEvent::Pattern(p) = e {
                sink.lock().unwrap().push(p);
            }
        });
        let cut = 5 * 7; // 7 full ticks of 5 records
        for r in &records[..cut] {
            live.push(*r).unwrap();
        }
        let ckpt = live.checkpoint().unwrap();
        assert_eq!(ckpt.records_ingested as usize, cut);
        let delivered_before = pre.lock().unwrap().clone();
        drop(live); // crash: never finished, flush events discarded

        let post: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&post);
        let resumed = IcpePipeline::launch_from(&cfg, &ckpt, move |e| {
            if let PipelineEvent::Pattern(p) = e {
                sink.lock().unwrap().push(p);
            }
        })
        .unwrap();
        for r in &records[cut..] {
            resumed.push(*r).unwrap();
        }
        let report = resumed.finish();
        assert_eq!(report.snapshots, 12, "restored gauges stayed cumulative");

        let mut got = delivered_before;
        got.extend(post.lock().unwrap().clone());
        assert_eq!(unique_object_sets(&got), want);
    }

    #[test]
    fn checkpoint_restore_preserves_cumulative_obs_counters() {
        // The registry's cumulative counters ride in the checkpoint and
        // survive a kill + restore: immediately after launch_from (no
        // replayed record has flowed yet) the restored registry reproduces
        // the cut exactly, and further input only grows the totals.
        let cfg = config(2, EnumeratorKind::Fba);
        let records = walking_records(10);
        let live = IcpePipeline::launch(&cfg, |_| {});
        for r in &records[..25] {
            live.push(*r).unwrap();
        }
        let ckpt = live.checkpoint().unwrap();
        let cut = ckpt
            .obs
            .clone()
            .expect("instrumented pipelines checkpoint obs");
        let records_at_cut = |c: &ObsCheckpoint| {
            c.counters
                .iter()
                .find(|e| e.stage == "align-route" && e.name == "stage_records_in_total")
                .map(|e| e.value)
                .unwrap_or(0)
        };
        // 25 data records + 1 barrier message: the counters count dataflow
        // messages, control messages included.
        assert_eq!(
            records_at_cut(&cut),
            26,
            "the router stage counted every pre-cut message: {cut:?}"
        );
        drop(live); // crash

        let resumed = IcpePipeline::launch_from(&cfg, &ckpt, |_| {}).unwrap();
        // Fresh stage registrations are zero-valued and zeros are omitted
        // from the checkpoint form, so the equality is exact.
        assert_eq!(
            resumed.obs().counter_checkpoint(),
            cut,
            "restored counters reproduce the cut before any record flows"
        );
        let registry = resumed.obs().clone();
        for r in &records[25..] {
            resumed.push(*r).unwrap();
        }
        resumed.finish();
        let after = registry.counter_checkpoint();
        assert_eq!(
            records_at_cut(&after),
            records.len() as u64 + 1, // 50 data messages + the one barrier
            "replayed input accumulates on top of the restored base"
        );
    }

    #[test]
    fn uninstrumented_launch_registers_no_metrics_but_checkpoints_fine() {
        let cfg = IcpeConfig::builder()
            .constraints(Constraints::new(3, 4, 2, 2).unwrap())
            .epsilon(1.0)
            .min_pts(3)
            .parallelism(2)
            .instrument(false)
            .build()
            .unwrap();
        let live = IcpePipeline::launch(&cfg, |_| {});
        for r in walking_records(6) {
            live.push(r).unwrap();
        }
        let ckpt = live.checkpoint().unwrap();
        assert_eq!(
            ckpt.obs,
            Some(ObsCheckpoint {
                counters: Vec::new()
            }),
            "no families registered, so the obs section is empty"
        );
        assert!(live.obs().stage_seconds().is_empty());
        // The journal is independent of metric instrumentation: window
        // seals and the barrier pass are recorded either way.
        assert!(live.obs().last_seq() > 0);
        live.finish();
    }

    #[test]
    fn restore_reshards_across_different_parallelism() {
        let records = walking_records(12);
        let want = unique_object_sets(
            &IcpePipeline::run(&config(2, EnumeratorKind::Vba), records.clone()).patterns,
        );

        let live = IcpePipeline::launch(&config(2, EnumeratorKind::Vba), |_| {});
        let cut = 5 * 6;
        for r in &records[..cut] {
            live.push(*r).unwrap();
        }
        let ckpt = live.checkpoint().unwrap();
        let pre: Vec<Pattern> = Vec::new(); // VBA reports at closure; none closed yet
        drop(live);

        // Resume with parallelism 5 — state re-shards by owner hash.
        let post: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&post);
        let resumed = IcpePipeline::launch_from(&config(5, EnumeratorKind::Vba), &ckpt, move |e| {
            if let PipelineEvent::Pattern(p) = e {
                sink.lock().unwrap().push(p);
            }
        })
        .unwrap();
        for r in &records[cut..] {
            resumed.push(*r).unwrap();
        }
        resumed.finish();
        let mut got = pre;
        got.extend(post.lock().unwrap().clone());
        assert_eq!(unique_object_sets(&got), want);
    }

    #[test]
    fn launch_from_rejects_mismatched_checkpoints() {
        let live = IcpePipeline::launch(&config(2, EnumeratorKind::Fba), |_| {});
        live.push(walking_records(1)[0]).unwrap();
        let mut ckpt = live.checkpoint().unwrap();
        live.finish();

        // Wrong engine kind.
        let err = IcpePipeline::launch_from(&config(2, EnumeratorKind::Vba), &ckpt, |_| {})
            .err()
            .unwrap();
        assert!(matches!(err, CheckpointError::EngineMismatch { .. }));

        // Wrong schema version.
        ckpt.version += 1;
        let err = IcpePipeline::launch_from(&config(2, EnumeratorKind::Fba), &ckpt, |_| {})
            .err()
            .unwrap();
        assert!(matches!(err, CheckpointError::UnsupportedVersion { .. }));
    }

    // ---- supervision -------------------------------------------------------

    /// Small batches keep fault-point batch ordinals dense (every
    /// generation sees several batches per stage), so injected panics fire
    /// deterministically across restarts.
    fn supervised_config(n: usize, fault: &str) -> IcpeConfig {
        IcpeConfig::builder()
            .constraints(Constraints::new(3, 4, 2, 2).unwrap())
            .epsilon(1.0)
            .min_pts(3)
            .parallelism(n)
            .batch_size(4)
            .enumerator(EnumeratorKind::Fba)
            .supervised(Supervision {
                backoff: std::time::Duration::from_millis(1),
                checkpoint_every_records: Some(16),
                ..Supervision::default()
            })
            .fault_plan(Arc::new(icpe_runtime::FaultPlan::from_spec(fault).unwrap()))
            .build()
            .unwrap()
    }

    /// Pattern multiset (not just unique sets): exactly-once must also hold
    /// per duplicate delivery.
    fn pattern_counts(patterns: &[Pattern]) -> HashMap<u64, usize> {
        let mut counts = HashMap::new();
        for p in patterns {
            *counts.entry(stable_hash(p)).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn supervised_pipeline_heals_an_injected_panic() {
        let baseline = IcpePipeline::run(&config(2, EnumeratorKind::Fba), walking_records(10));

        let cfg = supervised_config(2, "panic@align-route:0:2");
        let plan = cfg.runtime.fault.clone().unwrap();
        let patterns: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sealed: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let (p, s) = (Arc::clone(&patterns), Arc::clone(&sealed));
        let live = IcpePipeline::launch(&cfg, move |event| match event {
            PipelineEvent::Pattern(pat) => p.lock().unwrap().push(pat),
            PipelineEvent::SnapshotSealed { time } => s.lock().unwrap().push(time),
        });
        assert_eq!(live.health(), HealthState::Healthy);
        let obs = live.obs().clone();
        for r in walking_records(10) {
            live.push(r).unwrap();
        }
        let report = live.finish();

        assert!(plan.exhausted(), "the injected panic fired");
        assert!(
            obs.counter("supervisor", 0, "pipeline_restarts_total")
                .get()
                >= 1,
            "a restart was accounted"
        );
        assert!(
            obs.counter("supervisor", 0, "pipeline_recoveries_total")
                .get()
                >= 1,
            "a recovery completed"
        );
        // Exactly-once across the recovery cut: the healed run's delivered
        // pattern multiset matches an uninterrupted run's, and every
        // snapshot seals exactly once.
        let got = patterns.lock().unwrap();
        assert_eq!(pattern_counts(&got), pattern_counts(&baseline.patterns));
        let mut seals = sealed.lock().unwrap().clone();
        seals.sort_unstable();
        assert_eq!(seals, (0..10).collect::<Vec<_>>(), "seals exactly once");
        assert_eq!(report.snapshots, 10, "progress counters conserved");
    }

    #[test]
    fn supervised_health_transitions_to_recovering_and_back() {
        let cfg = supervised_config(2, "panic@align-route:0:1");
        let live = IcpePipeline::launch(&cfg, |_| {});
        let health = live.health_handle();
        for r in walking_records(10) {
            live.push(r).unwrap();
        }
        // The panic fires while records flow; poll for the round trip.
        let mut saw_non_healthy = false;
        for _ in 0..500 {
            if health.get() != HealthState::Healthy {
                saw_non_healthy = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        live.finish();
        // Whether or not the poll caught the transient Recovering window,
        // the pipeline must end Healthy with the restart on the books.
        let _ = saw_non_healthy;
        assert_eq!(health.get(), HealthState::Healthy);
    }

    #[test]
    fn supervised_pipeline_fails_terminally_without_hanging() {
        let mut cfg = supervised_config(
            1,
            "panic@align-route:0:0;panic@align-route:0:1;panic@align-route:0:2",
        );
        cfg.supervision = Some(Supervision {
            max_restarts: 2,
            backoff: std::time::Duration::from_millis(1),
            checkpoint_every_records: Some(16),
            ..Supervision::default()
        });
        let live = IcpePipeline::launch(&cfg, |_| {});
        let health = live.health_handle();
        for r in walking_records(10) {
            // Pushes must never hang or panic, even once the pipeline is
            // terminally down (they are discarded).
            live.push(r).unwrap();
        }
        for _ in 0..5000 {
            if health.get() == HealthState::Failed {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(health.get(), HealthState::Failed, "restart budget spent");
        // A checkpoint request against a failed pipeline errors instead of
        // blocking forever.
        assert!(live.checkpoint().is_err());
        live.finish();
    }

    #[test]
    fn supervised_without_faults_matches_unsupervised() {
        let baseline = IcpePipeline::run(&config(3, EnumeratorKind::Fba), walking_records(10));
        let cfg = IcpeConfig::builder()
            .constraints(Constraints::new(3, 4, 2, 2).unwrap())
            .epsilon(1.0)
            .min_pts(3)
            .parallelism(3)
            .enumerator(EnumeratorKind::Fba)
            .supervised(Supervision::default())
            .build()
            .unwrap();
        let out = IcpePipeline::run(&cfg, walking_records(10));
        assert_eq!(
            pattern_counts(&out.patterns),
            pattern_counts(&baseline.patterns)
        );
        assert_eq!(out.metrics.snapshots, 10);
    }
}
