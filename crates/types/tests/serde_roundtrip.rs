//! Serde round-trips for the wire-facing types (records cross process
//! boundaries in a real deployment; the formats must be stable).

use icpe_types::{
    Cluster, ClusterSnapshot, Constraints, GpsRecord, ObjectId, Pattern, Point, RawRecord,
    Snapshot, TimeSequence, Timestamp,
};

fn roundtrip<
    T: serde::Serialize + for<'de> serde::Deserialize<'de> + PartialEq + std::fmt::Debug,
>(
    value: &T,
) {
    let json = serde_json::to_string(value).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, value);
}

#[test]
fn records_round_trip() {
    roundtrip(&RawRecord::new(ObjectId(3), Point::new(1.5, -2.5), 13.25));
    roundtrip(&GpsRecord::new(
        ObjectId(7),
        Point::new(0.0, 9.0),
        Timestamp(4),
        Some(Timestamp(2)),
    ));
    roundtrip(&GpsRecord::new(
        ObjectId(7),
        Point::new(0.0, 9.0),
        Timestamp(0),
        None,
    ));
}

#[test]
fn snapshots_round_trip() {
    let mut s = Snapshot::new(Timestamp(9));
    s.push(ObjectId(1), Point::new(1.0, 2.0), None);
    s.push(ObjectId(2), Point::new(3.0, 4.0), Some(Timestamp(8)));
    roundtrip(&s);

    let cs = ClusterSnapshot::from_groups(
        Timestamp(9),
        [
            vec![ObjectId(1), ObjectId(2)],
            vec![ObjectId(5), ObjectId(6)],
        ],
    );
    roundtrip(&cs);
    roundtrip(&Cluster::new(vec![ObjectId(4), ObjectId(1)]));
}

#[test]
fn patterns_and_constraints_round_trip() {
    let p = Pattern::new(
        vec![ObjectId(4), ObjectId(5), ObjectId(6)],
        TimeSequence::from_raw([3, 4, 6, 7]).expect("valid"),
    );
    roundtrip(&p);
    roundtrip(&Constraints::new(3, 4, 2, 2).expect("valid"));
}
