//! Golden-fixture guard for the checkpoint schema.
//!
//! The on-disk checkpoint format is a promise to every running deployment:
//! any change to the checkpoint structs (fields added/removed/renamed/
//! reordered — field order is part of the JSON bytes) must bump
//! [`CHECKPOINT_VERSION`] so restore can refuse incompatible files instead
//! of silently misreading them. This test pins the serialized bytes of a
//! canonical sample against `tests/fixtures/checkpoint_v<N>.json` and
//! fails when the schema drifts without a version bump.
//!
//! After an intentional schema change: bump `CHECKPOINT_VERSION`, then
//! regenerate the fixture with
//! `ICPE_REGEN_FIXTURE=1 cargo test -p icpe-types --test checkpoint_schema`.

use icpe_types::{
    AlignerCheckpoint, CellAssignment, CellLoadCheckpoint, CellRefinement, ChainCheckpoint,
    EngineCheckpoint, EpisodeCheckpoint, HistoryRowCheckpoint, ObjectId, ObsCheckpoint,
    ObsCounterEntry, PipelineCheckpoint, Point, ProgressCheckpoint, RoutingCheckpoint, Snapshot,
    SyncCheckpoint, SyncWindowCheckpoint, Timestamp, VbaOwnerCheckpoint, WindowOwnerCheckpoint,
    CHECKPOINT_VERSION,
};

/// A canonical sample exercising every field of every checkpoint struct.
fn sample() -> PipelineCheckpoint {
    let mut buffered = Snapshot::new(Timestamp(41));
    buffered.push(ObjectId(3), Point::new(1.5, -2.0), Some(Timestamp(40)));
    buffered.push(ObjectId(9), Point::new(0.0, 7.25), None);
    PipelineCheckpoint {
        version: CHECKPOINT_VERSION,
        seq: 12,
        records_ingested: 4096,
        aligner: AlignerCheckpoint {
            buffers: vec![buffered],
            chains: vec![
                ChainCheckpoint {
                    id: ObjectId(3),
                    clarified: Some(40),
                    waiting: vec![(42, 44)],
                },
                ChainCheckpoint {
                    id: ObjectId(9),
                    clarified: None,
                    waiting: vec![],
                },
            ],
            sealed_up_to: Some(41),
            max_seen: 44,
            late_dropped: 5,
        },
        engine: EngineCheckpoint {
            kind: "FBA".into(),
            last_time: Some(40),
            skipped_partitions: 2,
            window_owners: vec![WindowOwnerCheckpoint {
                owner: ObjectId(3),
                starts: vec![38, 40],
                history: vec![HistoryRowCheckpoint {
                    time: 38,
                    members: vec![ObjectId(5), ObjectId(9)],
                }],
            }],
            vba_owners: vec![VbaOwnerCheckpoint {
                owner: ObjectId(5),
                open: vec![EpisodeCheckpoint {
                    member: ObjectId(6),
                    st: 37,
                    et: 40,
                    bits: "1011".into(),
                }],
                candidates: vec![EpisodeCheckpoint {
                    member: ObjectId(7),
                    st: 30,
                    et: 34,
                    bits: "11011".into(),
                }],
            }],
        },
        progress: ProgressCheckpoint {
            snapshots_completed: 40,
            late_records: 5,
            max_sealed: Some(40),
        },
        routing: Some(RoutingCheckpoint {
            epoch: 7,
            assignments: vec![
                CellAssignment {
                    x: -3,
                    y: 2,
                    level: 0,
                    subtask: 0,
                },
                CellAssignment {
                    x: 9,
                    y: 8,
                    level: 1,
                    subtask: 2,
                },
            ],
            loads: vec![CellLoadCheckpoint {
                x: 9,
                y: 8,
                level: 1,
                load_milli: 12345,
            }],
            cells_migrated: 9,
            refinements: vec![CellRefinement {
                x: 4,
                y: 4,
                depth: 1,
            }],
            splits: 2,
            coalesces: 1,
        }),
        sync: Some(SyncCheckpoint {
            pairs_merged: 512,
            duplicates: 31,
            windows_sealed: 40,
            pending: vec![SyncWindowCheckpoint {
                time: 42,
                pairs: vec![(ObjectId(3), ObjectId(5)), (ObjectId(3), ObjectId(9))],
            }],
        }),
        obs: Some(ObsCheckpoint {
            counters: vec![
                ObsCounterEntry {
                    stage: "align".into(),
                    name: "stage_batches_in_total".into(),
                    value: 64,
                },
                ObsCounterEntry {
                    stage: "align".into(),
                    name: "stage_records_in_total".into(),
                    value: 4096,
                },
                ObsCounterEntry {
                    stage: "grid-query".into(),
                    name: "exchange_blocked_seconds_total".into(),
                    value: 2_500_000,
                },
            ],
        }),
    }
}

fn fixture_path() -> String {
    format!(
        "{}/tests/fixtures/checkpoint_v{}.json",
        env!("CARGO_MANIFEST_DIR"),
        CHECKPOINT_VERSION
    )
}

#[test]
fn schema_change_requires_version_bump() {
    let json = serde_json::to_string(&sample()).unwrap();
    let path = fixture_path();
    if std::env::var("ICPE_REGEN_FIXTURE").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(&path).parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{json}\n")).unwrap();
        return;
    }
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing fixture for checkpoint schema v{CHECKPOINT_VERSION} at {path}; \
             after bumping CHECKPOINT_VERSION, regenerate it with \
             ICPE_REGEN_FIXTURE=1 cargo test -p icpe-types --test checkpoint_schema"
        )
    });
    assert_eq!(
        json,
        fixture.trim_end(),
        "checkpoint schema bytes changed without a CHECKPOINT_VERSION bump \
         (or the fixture is stale): bump the version in \
         crates/types/src/checkpoint.rs and regenerate the fixture with \
         ICPE_REGEN_FIXTURE=1 cargo test -p icpe-types --test checkpoint_schema"
    );
    // And the pinned bytes restore losslessly.
    let parsed: PipelineCheckpoint = serde_json::from_str(fixture.trim_end()).unwrap();
    assert_eq!(parsed, sample());
}

/// The guard has teeth against drift: a schema change that slips through
/// without a version bump (simulated here by renaming a field in the pinned
/// bytes) both breaks the byte comparison the guard performs and refuses to
/// restore — so it cannot silently misread old files either way.
#[test]
fn guard_fails_on_schema_drift_without_version_bump() {
    let fixture = std::fs::read_to_string(fixture_path()).unwrap();
    let pinned = fixture.trim_end();
    let drifted = pinned.replace("\"max_seen\":", "\"maximum_seen\":");
    assert_ne!(drifted, pinned, "simulated drift must change the bytes");
    assert_ne!(
        serde_json::to_string(&sample()).unwrap(),
        drifted,
        "the guard's byte comparison catches the drift"
    );
    assert!(
        serde_json::from_str::<PipelineCheckpoint>(&drifted).is_err(),
        "drifted bytes must not restore as the current schema"
    );
}

/// A version bump without a regenerated fixture is itself a failure: the
/// fixture for the *current* version must be committed and must carry the
/// current version number inside.
#[test]
fn fixture_for_current_version_is_committed() {
    let path = fixture_path();
    assert!(
        std::path::Path::new(&path).exists(),
        "no fixture at {path}: after bumping CHECKPOINT_VERSION, regenerate \
         it with ICPE_REGEN_FIXTURE=1 cargo test -p icpe-types --test \
         checkpoint_schema and commit the file"
    );
    let parsed: PipelineCheckpoint =
        serde_json::from_str(std::fs::read_to_string(&path).unwrap().trim_end()).unwrap();
    assert_eq!(
        parsed.version, CHECKPOINT_VERSION,
        "fixture was written for a different schema version"
    );
}
