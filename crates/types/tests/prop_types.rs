//! Property-based tests for the core data model.

use icpe_types::{Constraints, DistanceMetric, Point, Rect, TimeSequence, Timestamp};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1e4f64..1e4, -1e4f64..1e4).prop_map(|(x, y)| Point::new(x, y))
}

/// Strictly increasing time vectors built from positive gaps.
fn arb_times() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(1u32..6, 0..40).prop_map(|gaps| {
        let mut t = 0u32;
        let mut out = Vec::with_capacity(gaps.len());
        for g in gaps {
            t += g;
            out.push(t);
        }
        out
    })
}

proptest! {
    #[test]
    fn metric_balls_nest(a in arb_point(), b in arb_point(), eps in 0.0f64..100.0) {
        // L1 ball ⊆ L2 ball ⊆ Chebyshev ball.
        if DistanceMetric::L1.within(&a, &b, eps) {
            prop_assert!(DistanceMetric::L2.within(&a, &b, eps + 1e-9));
        }
        if DistanceMetric::L2.within(&a, &b, eps) {
            prop_assert!(DistanceMetric::Chebyshev.within(&a, &b, eps + 1e-9));
        }
    }

    #[test]
    fn distance_symmetry(a in arb_point(), b in arb_point()) {
        prop_assert_eq!(a.l1(&b), b.l1(&a));
        prop_assert_eq!(a.l2_sq(&b), b.l2_sq(&a));
        prop_assert_eq!(a.chebyshev(&b), b.chebyshev(&a));
    }

    #[test]
    fn chebyshev_matches_range_region(a in arb_point(), b in arb_point(), eps in 0.001f64..100.0) {
        // The square range region is exactly the Chebyshev ball.
        let region = Rect::range_region(a, eps);
        prop_assert_eq!(region.contains_point(&b), DistanceMetric::Chebyshev.within(&a, &b, eps));
    }

    #[test]
    fn rect_union_is_commutative_and_covering(a in arb_point(), b in arb_point()) {
        let ra = Rect::from_point(a);
        let rb = Rect::from_point(b);
        let u = ra.union(&rb);
        prop_assert_eq!(u, rb.union(&ra));
        prop_assert!(u.contains_point(&a) && u.contains_point(&b));
        prop_assert!(u.contains_rect(&ra) && u.contains_rect(&rb));
    }

    #[test]
    fn segments_partition_the_sequence(times in arb_times()) {
        let seq = TimeSequence::from_raw(times.clone()).unwrap();
        let segs = seq.segments();
        // Segment lengths sum to |T|.
        let total: usize = segs.iter().map(|&(_, len)| len).sum();
        prop_assert_eq!(total, times.len());
        // Segments reconstruct the original sequence.
        let mut rebuilt = Vec::new();
        for (start, len) in &segs {
            for i in 0..*len {
                rebuilt.push(start.0 + i as u32);
            }
        }
        prop_assert_eq!(rebuilt, times);
        // last_segment_len agrees with the last segment.
        if let Some(&(_, len)) = segs.last() {
            prop_assert_eq!(seq.last_segment_len(), len);
        }
    }

    #[test]
    fn l_consecutive_definition(times in arb_times(), l in 1usize..5) {
        let seq = TimeSequence::from_raw(times).unwrap();
        let by_method = seq.is_l_consecutive(l);
        let by_definition = seq.segments().iter().all(|&(_, len)| len >= l);
        prop_assert_eq!(by_method, by_definition);
    }

    #[test]
    fn g_connected_definition(times in arb_times(), g in 1u32..6) {
        let seq = TimeSequence::from_raw(times.clone()).unwrap();
        let by_method = seq.is_g_connected(g);
        let by_definition = times.windows(2).all(|w| w[1] - w[0] <= g);
        prop_assert_eq!(by_method, by_definition);
    }

    #[test]
    fn eta_is_at_least_k(m in 2usize..10, k in 1usize..300, l_idx in 0usize..5, g in 1u32..60) {
        let l = (l_idx % k.max(1)) + 1; // 1 ≤ L ≤ K
        if let Ok(c) = Constraints::new(m, k, l, g) {
            // η must cover at least K snapshots, and be finite/sane.
            prop_assert!(c.eta() >= k);
            prop_assert!(c.eta() <= (k / l + 1) * (g as usize) + k + l);
        }
    }

    #[test]
    fn eta_window_suffices_for_any_valid_sequence(gaps in prop::collection::vec(1u32..4, 1..20)) {
        // Any (K,L,G)-valid sequence starting at t spans at most η snapshots.
        // Build a sequence, find constraints it satisfies, check the span.
        let mut t = 5u32;
        let mut times = vec![t];
        for g in gaps {
            t += g;
            times.push(t);
        }
        let seq = TimeSequence::from_raw(times.clone()).unwrap();
        let k = seq.len();
        let l = seq.segments().iter().map(|&(_, len)| len).min().unwrap();
        let g = times.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(1);
        let c = Constraints::new(2, k, l, g).unwrap();
        prop_assert!(seq.satisfies_klg(k, l, g));
        let span = (seq.max().unwrap().0 - seq.min().unwrap().0 + 1) as usize;
        prop_assert!(span <= c.eta(),
            "span {} exceeds eta {} for K={} L={} G={}", span, c.eta(), k, l, g);
    }

    #[test]
    fn timestamp_gap_triangle(a in 0u32..1000, b in 0u32..1000, c in 0u32..1000) {
        let (ta, tb, tc) = (Timestamp(a), Timestamp(b), Timestamp(c));
        prop_assert!(ta.gap(tc) <= ta.gap(tb) + tb.gap(tc));
    }
}
