//! The `CP(M, K, L, G)` pattern constraints and DBSCAN parameters.

use crate::TypeError;
use serde::{Deserialize, Serialize};

/// The four constraints of a general co-movement pattern (Definition 4):
///
/// * `m` — **significance**: minimum number of objects, `|O| ≥ M`;
/// * `k` — **duration**: minimum number of times, `|T| ≥ K`;
/// * `l` — **consecutiveness**: minimum maximal-segment length;
/// * `g` — **connection**: maximum gap between neighboring times.
///
/// Invariants enforced at construction: `M ≥ 2` (a "group" of one object is
/// meaningless and breaks id-based partitioning), `1 ≤ L ≤ K`, `G ≥ 1`
/// (a gap of 1 means strictly consecutive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Constraints {
    m: usize,
    k: usize,
    l: usize,
    g: u32,
}

impl Constraints {
    /// Validates and creates a constraint set.
    pub fn new(m: usize, k: usize, l: usize, g: u32) -> Result<Self, TypeError> {
        if m < 2 {
            return Err(TypeError::InvalidConstraints(format!(
                "significance M must be ≥ 2, got {m}"
            )));
        }
        if l == 0 {
            return Err(TypeError::InvalidConstraints(
                "consecutiveness L must be ≥ 1".into(),
            ));
        }
        if k < l {
            return Err(TypeError::InvalidConstraints(format!(
                "duration K ({k}) must be ≥ consecutiveness L ({l})"
            )));
        }
        if g == 0 {
            return Err(TypeError::InvalidConstraints(
                "connection G must be ≥ 1 (G = 1 means strictly consecutive)".into(),
            ));
        }
        Ok(Constraints { m, k, l, g })
    }

    /// Significance: minimum group size `M`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Duration: minimum total times `K`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Consecutiveness: minimum segment length `L`.
    #[inline]
    pub fn l(&self) -> usize {
        self.l
    }

    /// Connection: maximum gap `G`.
    #[inline]
    pub fn g(&self) -> u32 {
        self.g
    }

    /// Lemma 4: the verification window length
    /// `η = (⌈K/L⌉ − 1) × (G − 1) + K + L − 1`.
    ///
    /// Checking η consecutive snapshots starting at a pattern's first time is
    /// guaranteed not to miss any valid pattern.
    pub fn eta(&self) -> usize {
        let ceil_k_over_l = self.k.div_ceil(self.l);
        (ceil_k_over_l - 1) * (self.g as usize - 1) + self.k + self.l - 1
    }

    // ---- classic pattern variants as instances of CP(M, K, L, G) ---------
    //
    // Fan et al.'s unified definition (which this paper adopts) subsumes the
    // earlier co-movement pattern families; these constructors spell out the
    // reductions of its Table 1.

    /// **Convoy** (Jeung et al., PVLDB'08): `m` objects density-clustered
    /// for `k` *strictly consecutive* timestamps — `CP(m, k, k, 1)`.
    pub fn convoy(m: usize, k: usize) -> Result<Self, TypeError> {
        Constraints::new(m, k, k, 1)
    }

    /// **Flock-shaped** constraints (Gudmundsson & van Kreveld, GIS'06):
    /// temporally identical to a convoy — `CP(m, k, k, 1)`. (True flock also
    /// swaps density clustering for fixed-diameter disks; the closeness
    /// choice is orthogonal to the temporal constraints.)
    pub fn flock(m: usize, k: usize) -> Result<Self, TypeError> {
        Constraints::new(m, k, k, 1)
    }

    /// **Swarm** (Li et al., PVLDB'10): `m` objects together for `k`
    /// possibly non-consecutive timestamps with unbounded gaps —
    /// `CP(m, k, 1, horizon)`. Streams are unbounded, so the caller supplies
    /// the `horizon` standing in for ∞ (e.g. the analysis window: gaps
    /// longer than it are never bridged).
    pub fn swarm(m: usize, k: usize, horizon: u32) -> Result<Self, TypeError> {
        Constraints::new(m, k, 1, horizon.max(1))
    }

    /// **Group** (Wang et al., '06): like swarm but with consecutiveness at
    /// least 1 — the unified definition maps it to `CP(m, k, 1, horizon)`
    /// as well (its distinguishing trait, closed reporting, is a
    /// post-processing concern; see `icpe-pattern`'s `maximal_patterns`).
    pub fn group(m: usize, k: usize, horizon: u32) -> Result<Self, TypeError> {
        Self::swarm(m, k, horizon)
    }

    /// **Platoon** (Li et al., DKE'15): swarm with a local consecutiveness
    /// requirement — `CP(m, k, l, horizon)`.
    pub fn platoon(m: usize, k: usize, l: usize, horizon: u32) -> Result<Self, TypeError> {
        Constraints::new(m, k, l, horizon.max(1))
    }
}

/// Density parameters of DBSCAN (Definition 8): the distance threshold `ε`
/// and the core-point threshold `minPts`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbscanParams {
    /// Distance threshold ε.
    pub eps: f64,
    /// Minimum number of ε-neighbors for a core point.
    pub min_pts: usize,
    /// Whether a point counts as its own neighbor (the classic DBSCAN
    /// convention). The paper's Definition 8 is ambiguous on this; both
    /// conventions are supported and this one is the default.
    pub count_self: bool,
}

impl DbscanParams {
    /// Validates and creates DBSCAN parameters with the classic
    /// self-counting convention.
    pub fn new(eps: f64, min_pts: usize) -> Result<Self, TypeError> {
        if eps <= 0.0 || !eps.is_finite() {
            return Err(TypeError::InvalidDbscanParams(format!(
                "eps must be positive and finite, got {eps}"
            )));
        }
        if min_pts == 0 {
            return Err(TypeError::InvalidDbscanParams("minPts must be ≥ 1".into()));
        }
        Ok(DbscanParams {
            eps,
            min_pts,
            count_self: true,
        })
    }

    /// Switches the neighbor-counting convention.
    pub fn with_count_self(mut self, count_self: bool) -> Self {
        self.count_self = count_self;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_validation() {
        assert!(Constraints::new(2, 1, 1, 1).is_ok());
        assert!(Constraints::new(1, 4, 2, 2).is_err()); // M < 2
        assert!(Constraints::new(3, 0, 0, 2).is_err()); // L = 0
        assert!(Constraints::new(3, 2, 4, 2).is_err()); // K < L
        assert!(Constraints::new(3, 4, 2, 0).is_err()); // G = 0
    }

    #[test]
    fn eta_matches_the_papers_example() {
        // Paper §6.1: K = 4, L = G = 2 → η = 6.
        let c = Constraints::new(3, 4, 2, 2).unwrap();
        assert_eq!(c.eta(), 6);
    }

    #[test]
    fn eta_reduces_to_k_when_strictly_consecutive() {
        // G = 1 → no gaps allowed → η = K + L − 1.
        let c = Constraints::new(2, 10, 5, 1).unwrap();
        assert_eq!(c.eta(), 10 + 5 - 1);
    }

    #[test]
    fn eta_grows_with_g_and_shrinks_with_l() {
        let base = Constraints::new(5, 120, 30, 20).unwrap().eta();
        let more_g = Constraints::new(5, 120, 30, 40).unwrap().eta();
        let more_l = Constraints::new(5, 120, 60, 20).unwrap().eta();
        assert!(more_g > base);
        assert!(more_l < base);
    }

    #[test]
    fn eta_with_k_equal_l() {
        // ⌈K/L⌉ = 1 → η = K + L − 1 regardless of G.
        let c = Constraints::new(2, 8, 8, 50).unwrap();
        assert_eq!(c.eta(), 15);
    }

    #[test]
    fn accessors_round_trip() {
        let c = Constraints::new(5, 120, 30, 20).unwrap();
        assert_eq!((c.m(), c.k(), c.l(), c.g()), (5, 120, 30, 20));
    }

    #[test]
    fn convoy_is_strictly_consecutive() {
        let c = Constraints::convoy(3, 5).unwrap();
        assert_eq!((c.m(), c.k(), c.l(), c.g()), (3, 5, 5, 1));
        // G = 1 and L = K: only one unbroken segment of length ≥ K works.
        assert_eq!(c.eta(), 5 + 5 - 1);
        assert_eq!(
            Constraints::flock(3, 5).unwrap(),
            Constraints::convoy(3, 5).unwrap()
        );
    }

    #[test]
    fn swarm_allows_arbitrary_gaps_within_horizon() {
        let c = Constraints::swarm(4, 6, 100).unwrap();
        assert_eq!((c.m(), c.k(), c.l(), c.g()), (4, 6, 1, 100));
        // horizon 0 is clamped to the minimum legal gap.
        assert_eq!(Constraints::swarm(2, 2, 0).unwrap().g(), 1);
        assert_eq!(
            Constraints::group(4, 6, 100).unwrap(),
            Constraints::swarm(4, 6, 100).unwrap()
        );
    }

    #[test]
    fn platoon_keeps_local_consecutiveness() {
        let c = Constraints::platoon(5, 8, 3, 50).unwrap();
        assert_eq!((c.m(), c.k(), c.l(), c.g()), (5, 8, 3, 50));
        assert!(Constraints::platoon(5, 2, 3, 50).is_err()); // K < L
    }

    #[test]
    fn variant_temporal_semantics() {
        use crate::TimeSequence;
        let gap_seq = TimeSequence::from_raw([1, 2, 3, 7, 8, 9]).unwrap();
        // A convoy of duration 6 rejects the gap...
        let convoy = Constraints::convoy(2, 6).unwrap();
        assert!(!gap_seq.satisfies_klg(convoy.k(), convoy.l(), convoy.g()));
        // ...a swarm accepts it...
        let swarm = Constraints::swarm(2, 6, 10).unwrap();
        assert!(gap_seq.satisfies_klg(swarm.k(), swarm.l(), swarm.g()));
        // ...and a platoon with L = 3 accepts it too (segments of 3).
        let platoon = Constraints::platoon(2, 6, 3, 10).unwrap();
        assert!(gap_seq.satisfies_klg(platoon.k(), platoon.l(), platoon.g()));
        // But a platoon rejects fragmented singletons.
        let frag = TimeSequence::from_raw([1, 3, 5, 7, 9, 11]).unwrap();
        assert!(!frag.satisfies_klg(platoon.k(), platoon.l(), platoon.g()));
        assert!(frag.satisfies_klg(swarm.k(), swarm.l(), swarm.g()));
    }

    #[test]
    fn dbscan_param_validation() {
        assert!(DbscanParams::new(0.5, 10).is_ok());
        assert!(DbscanParams::new(0.0, 10).is_err());
        assert!(DbscanParams::new(-1.0, 10).is_err());
        assert!(DbscanParams::new(f64::NAN, 10).is_err());
        assert!(DbscanParams::new(1.0, 0).is_err());
        let p = DbscanParams::new(1.0, 3).unwrap().with_count_self(false);
        assert!(!p.count_self);
    }
}
