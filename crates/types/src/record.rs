//! GPS records: the raw wire format and its discretized form.

use crate::{ObjectId, Point, Timestamp};
use serde::{Deserialize, Serialize};

/// A raw GPS record as produced by a device: `(id, location, clock time)`.
///
/// `time` is a real clock time in seconds (fractional seconds allowed);
/// [`crate::Discretizer`] maps it to a [`Timestamp`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawRecord {
    /// The reporting object.
    pub id: ObjectId,
    /// Reported location.
    pub location: Point,
    /// Seconds since the stream epoch.
    pub time: f64,
}

impl RawRecord {
    /// Creates a raw record.
    pub fn new(id: ObjectId, location: Point, time: f64) -> Self {
        RawRecord { id, location, time }
    }
}

/// A discretized GPS record: the unit that flows through the pipeline.
///
/// `last_time` carries the paper's *"last time"* stream-synchronization
/// information (§4): the discretized time of the most recent earlier snapshot
/// in which this trajectory reported a location, or `None` if this is the
/// trajectory's first record. The time-aligner uses it to decide whether the
/// system must keep waiting for a late record of this trajectory or may seal
/// a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsRecord {
    /// The reporting object.
    pub id: ObjectId,
    /// Reported location.
    pub location: Point,
    /// Discretized time of this record.
    pub time: Timestamp,
    /// Discretized time of this trajectory's previous record, if any.
    pub last_time: Option<Timestamp>,
}

impl GpsRecord {
    /// Creates a discretized record.
    pub fn new(
        id: ObjectId,
        location: Point,
        time: Timestamp,
        last_time: Option<Timestamp>,
    ) -> Self {
        GpsRecord {
            id,
            location,
            time,
            last_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_construction_round_trips() {
        let r = RawRecord::new(ObjectId(3), Point::new(1.0, 2.0), 13.5);
        assert_eq!(r.id, ObjectId(3));
        assert_eq!(r.time, 13.5);

        let g = GpsRecord::new(
            ObjectId(3),
            Point::new(1.0, 2.0),
            Timestamp(4),
            Some(Timestamp(2)),
        );
        assert_eq!(g.time, Timestamp(4));
        assert_eq!(g.last_time, Some(Timestamp(2)));
    }
}
