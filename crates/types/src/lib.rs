//! # icpe-types — data model for co-movement pattern detection
//!
//! The vocabulary of the ICPE system (VLDB'19): GPS records, discretized
//! timestamps, snapshots, time sequences, DBSCAN parameters, and the general
//! co-movement pattern constraints `CP(M, K, L, G)`.
//!
//! Everything downstream — the GR-index, the range-join clustering, and the
//! three pattern-enumeration engines — is written against these types.

pub mod checkpoint;
pub mod constraints;
pub mod discretize;
pub mod error;
pub mod ids;
pub mod pattern;
pub mod point;
pub mod record;
pub mod shard;
pub mod snapshot;
pub mod timeseq;

pub use checkpoint::{
    AlignerCheckpoint, CellAssignment, CellLoadCheckpoint, CellRefinement, ChainCheckpoint,
    CheckpointError, DiscretizerCheckpoint, EngineCheckpoint, EpisodeCheckpoint,
    HistoryRowCheckpoint, ObsCheckpoint, ObsCounterEntry, PipelineCheckpoint, ProgressCheckpoint,
    RoutingCheckpoint, SyncCheckpoint, SyncWindowCheckpoint, TrajectoryStamp, VbaOwnerCheckpoint,
    WindowOwnerCheckpoint, CHECKPOINT_VERSION,
};
pub use constraints::{Constraints, DbscanParams};
pub use discretize::Discretizer;
pub use error::TypeError;
pub use ids::{ObjectId, Timestamp};
pub use pattern::Pattern;
pub use point::{DistanceMetric, Point, Rect};
pub use record::{GpsRecord, RawRecord};
pub use snapshot::{Cluster, ClusterSnapshot, Snapshot, SnapshotEntry};
pub use timeseq::TimeSequence;
