//! Planar locations, axis-aligned rectangles, and distance metrics.

use serde::{Deserialize, Serialize};

/// A planar location `(x, y)`.
///
/// GPS coordinates are assumed to be projected into a planar coordinate
/// system before entering the pipeline (the paper's experiments express both
/// the grid cell width `lg` and the distance threshold `ε` as a percentage of
/// the dataset's maximal extent, which presumes a planar space).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Manhattan (L1) distance.
    #[inline]
    pub fn l1(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance.
    #[inline]
    pub fn l2(&self, other: &Point) -> f64 {
        self.l2_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the `sqrt` when comparing).
    #[inline]
    pub fn l2_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Chebyshev (L∞) distance.
    #[inline]
    pub fn chebyshev(&self, other: &Point) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Distance under the given metric.
    #[inline]
    pub fn distance(&self, other: &Point, metric: DistanceMetric) -> f64 {
        match metric {
            DistanceMetric::L1 => self.l1(other),
            DistanceMetric::L2 => self.l2(other),
            DistanceMetric::Chebyshev => self.chebyshev(other),
        }
    }
}

/// The distance function used by the range join and DBSCAN.
///
/// The paper states it uses the L1-norm but defines the range region of
/// `RQ(u, ε)` as the axis-aligned square `[u.x−ε, u.x+ε] × [u.y−ε, u.y+ε]` —
/// which is exactly the Chebyshev (L∞) ball. We therefore default to
/// [`DistanceMetric::Chebyshev`], for which the square region is *exact*, and
/// also support L1 and L2, for which the square region is a superset that is
/// refined by a per-pair distance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// Manhattan distance (diamond-shaped ε-ball).
    L1,
    /// Euclidean distance (disc-shaped ε-ball).
    L2,
    /// Chebyshev distance (square ε-ball — the paper's range region).
    #[default]
    Chebyshev,
}

impl DistanceMetric {
    /// True if `a` and `b` are within `eps` under this metric.
    ///
    /// Uses squared distances for L2 to avoid the square root.
    #[inline]
    pub fn within(&self, a: &Point, b: &Point, eps: f64) -> bool {
        match self {
            DistanceMetric::L1 => a.l1(b) <= eps,
            DistanceMetric::L2 => a.l2_sq(b) <= eps * eps,
            DistanceMetric::Chebyshev => a.chebyshev(b) <= eps,
        }
    }
}

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]` (closed).
///
/// Used as the bounding geometry of R-tree nodes and as range-query regions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Smallest x covered.
    pub min_x: f64,
    /// Smallest y covered.
    pub min_y: f64,
    /// Largest x covered.
    pub max_x: f64,
    /// Largest y covered.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its bounds; callers must keep `min ≤ max`.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "degenerate rect");
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// The square of half-width `eps` centered at `p` — the paper's range
    /// region for `RQ(p, ε)`.
    #[inline]
    pub fn range_region(p: Point, eps: f64) -> Self {
        Rect::new(p.x - eps, p.y - eps, p.x + eps, p.y + eps)
    }

    /// The *upper half* of the range region, `[x−ε, x+ε] × [y, y+ε]`,
    /// as used by Lemma 1 to avoid duplicate join results.
    #[inline]
    pub fn upper_range_region(p: Point, eps: f64) -> Self {
        Rect::new(p.x - eps, p.y, p.x + eps, p.y + eps)
    }

    /// The rounding slack used by the padded range regions: large enough to
    /// absorb the error of computing `x ± ε` in floating point, small enough
    /// (≈10⁻¹² relative) never to admit a spurious grid cell in practice.
    #[inline]
    pub fn range_pad(p: Point, eps: f64) -> f64 {
        (p.x.abs() + p.y.abs() + eps) * 1e-12
    }

    /// [`Rect::range_region`] padded by [`Rect::range_pad`].
    ///
    /// `d(u, v) ≤ ε` is decided by the distance metric; the rectangle is only
    /// a pre-filter. Computing `x − ε` rounds, so an unpadded rectangle could
    /// exclude a point whose metric distance still compares `≤ ε` — the pad
    /// keeps the pre-filter a strict superset of every metric ball.
    #[inline]
    pub fn padded_range_region(p: Point, eps: f64) -> Self {
        Rect::range_region(p, eps + Self::range_pad(p, eps))
    }

    /// [`Rect::upper_range_region`] with the same rounding pad applied to the
    /// three ε-derived edges (the lower edge stays exactly `y`: Lemma 1's
    /// case split is on the stored coordinates, which compare exactly).
    #[inline]
    pub fn padded_upper_range_region(p: Point, eps: f64) -> Self {
        let e = eps + Self::range_pad(p, eps);
        Rect::new(p.x - e, p.y, p.x + e, p.y + e)
    }

    /// An "empty" rectangle that is the identity for [`Rect::union`].
    #[inline]
    pub fn empty() -> Self {
        Rect {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// True if no point was ever unioned in.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x
    }

    /// True if `p` lies inside (boundary inclusive).
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// True if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// True if the rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// The smallest rectangle covering both inputs.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Grows the rectangle to cover `p`.
    #[inline]
    pub fn expand_to(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Area (zero for degenerate rectangles; zero for empty).
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max_x - self.min_x) * (self.max_y - self.min_y)
        }
    }

    /// Half-perimeter; the classic R-tree "margin" measure.
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max_x - self.min_x) + (self.max_y - self.min_y)
        }
    }

    /// The increase of area needed to cover `other`.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// The geometric center.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_agree_with_hand_computed_values() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.l1(&b), 7.0);
        assert_eq!(a.l2(&b), 5.0);
        assert_eq!(a.l2_sq(&b), 25.0);
        assert_eq!(a.chebyshev(&b), 4.0);
        assert_eq!(a.distance(&b, DistanceMetric::L1), 7.0);
        assert_eq!(a.distance(&b, DistanceMetric::L2), 5.0);
        assert_eq!(a.distance(&b, DistanceMetric::Chebyshev), 4.0);
    }

    #[test]
    fn within_uses_inclusive_threshold() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        assert!(DistanceMetric::Chebyshev.within(&a, &b, 1.0));
        assert!(!DistanceMetric::Chebyshev.within(&a, &b, 0.999));
        assert!(DistanceMetric::L1.within(&a, &b, 2.0));
        assert!(!DistanceMetric::L1.within(&a, &b, 1.999));
        assert!(DistanceMetric::L2.within(&a, &b, std::f64::consts::SQRT_2 + 1e-12));
        assert!(!DistanceMetric::L2.within(&a, &b, 1.0));
    }

    #[test]
    fn metric_balls_nest_as_expected() {
        // Chebyshev ball ⊇ L2 ball ⊇ L1 ball for the same eps.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.9, 0.9);
        assert!(DistanceMetric::Chebyshev.within(&a, &b, 1.0));
        assert!(!DistanceMetric::L2.within(&a, &b, 1.0));
        assert!(!DistanceMetric::L1.within(&a, &b, 1.0));
    }

    #[test]
    fn rect_contains_and_intersects() {
        let r = Rect::new(0.0, 0.0, 10.0, 5.0);
        assert!(r.contains_point(&Point::new(0.0, 0.0)));
        assert!(r.contains_point(&Point::new(10.0, 5.0)));
        assert!(!r.contains_point(&Point::new(10.01, 5.0)));

        let s = Rect::new(10.0, 5.0, 12.0, 6.0); // touches at a corner
        assert!(r.intersects(&s));
        let t = Rect::new(10.5, 5.5, 12.0, 6.0);
        assert!(!r.intersects(&t));
        assert!(r.contains_rect(&Rect::new(1.0, 1.0, 2.0, 2.0)));
        assert!(!r.contains_rect(&s));
    }

    #[test]
    fn rect_union_and_enlargement() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        let s = Rect::new(2.0, 2.0, 3.0, 3.0);
        let u = r.union(&s);
        assert_eq!(u, Rect::new(0.0, 0.0, 3.0, 3.0));
        assert_eq!(u.area(), 9.0);
        assert_eq!(r.enlargement(&s), 8.0);
        assert_eq!(u.margin(), 6.0);
        assert_eq!(u.center(), Point::new(1.5, 1.5));
    }

    #[test]
    fn empty_rect_behaves_as_union_identity() {
        let mut e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.margin(), 0.0);
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(e.union(&r), r);
        e.expand_to(&Point::new(1.0, 2.0));
        assert!(!e.is_empty());
        assert_eq!(e, Rect::from_point(Point::new(1.0, 2.0)));
    }

    #[test]
    fn range_regions_match_paper_definitions() {
        let p = Point::new(5.0, 5.0);
        assert_eq!(Rect::range_region(p, 2.0), Rect::new(3.0, 3.0, 7.0, 7.0));
        // Lemma 1: only the upper half, [x−ε, x+ε] × [y, y+ε].
        assert_eq!(
            Rect::upper_range_region(p, 2.0),
            Rect::new(3.0, 5.0, 7.0, 7.0)
        );
    }
}
