//! Identifier newtypes: trajectory/object ids and discretized timestamps.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a moving object (equivalently, of its streaming trajectory).
///
/// The paper keys the pattern-enumeration subtasks by trajectory id (the
/// *id-based partitioning* of §6.1), so the id doubles as a partition key.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The raw integer id.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl From<u32> for ObjectId {
    fn from(v: u32) -> Self {
        ObjectId(v)
    }
}

/// A discretized timestamp: the index of the time interval a real clock time
/// fell into (Definition 1 of the paper).
///
/// Snapshots, time sequences and bit strings are all expressed in this
/// discretized domain.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u32);

impl Timestamp {
    /// The raw interval index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The next timestamp.
    #[inline]
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }

    /// Absolute gap between two timestamps.
    #[inline]
    pub fn gap(self, other: Timestamp) -> u32 {
        self.0.abs_diff(other.0)
    }

    /// Saturating addition of a number of intervals.
    #[inline]
    pub fn saturating_add(self, delta: u32) -> Timestamp {
        Timestamp(self.0.saturating_add(delta))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Timestamp {
    fn from(v: u32) -> Self {
        Timestamp(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_ordering_matches_raw() {
        assert!(ObjectId(1) < ObjectId(2));
        assert_eq!(ObjectId(7).raw(), 7);
        assert_eq!(ObjectId::from(3), ObjectId(3));
        assert_eq!(ObjectId(12).to_string(), "o12");
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(10);
        assert_eq!(t.next(), Timestamp(11));
        assert_eq!(t.gap(Timestamp(4)), 6);
        assert_eq!(Timestamp(4).gap(t), 6);
        assert_eq!(t.saturating_add(5), Timestamp(15));
        assert_eq!(Timestamp(u32::MAX).saturating_add(5), Timestamp(u32::MAX));
        assert_eq!(t.to_string(), "10");
    }
}
