//! Discovered co-movement patterns.

use crate::{Constraints, ObjectId, TimeSequence};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A discovered co-movement pattern: the object set `O` and a witnessing
/// time sequence `T` (Definition 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pattern {
    /// The co-moving objects, sorted ascending.
    pub objects: Vec<ObjectId>,
    /// The witnessing time sequence.
    pub times: TimeSequence,
}

impl Pattern {
    /// Creates a pattern, sorting and deduplicating the object set.
    pub fn new(mut objects: Vec<ObjectId>, times: TimeSequence) -> Self {
        objects.sort_unstable();
        objects.dedup();
        Pattern { objects, times }
    }

    /// Verifies all five constraints *except closeness* (which is a property
    /// of the cluster stream, not of the pattern object itself).
    pub fn satisfies(&self, c: &Constraints) -> bool {
        self.objects.len() >= c.m() && self.times.satisfies_klg(c.k(), c.l(), c.g())
    }

    /// True if `other`'s objects are a subset of ours and `other`'s times are
    /// a subset of ours — i.e. `self` subsumes `other`.
    pub fn subsumes(&self, other: &Pattern) -> bool {
        is_subset(&other.objects, &self.objects)
            && is_subset_ts(other.times.times(), self.times.times())
    }
}

fn is_subset<T: Ord>(small: &[T], big: &[T]) -> bool {
    // Both sorted; classic merge scan.
    let mut i = 0;
    for item in small {
        while i < big.len() && big[i] < *item {
            i += 1;
        }
        if i >= big.len() || big[i] != *item {
            return false;
        }
        i += 1;
    }
    true
}

fn is_subset_ts(small: &[crate::Timestamp], big: &[crate::Timestamp]) -> bool {
    is_subset(small, big)
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, o) in self.objects.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{o}")?;
        }
        write!(f, "}} @ {}", self.times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(v: u32) -> ObjectId {
        ObjectId(v)
    }

    #[test]
    fn pattern_sorts_objects() {
        let p = Pattern::new(
            vec![oid(4), oid(2), oid(4)],
            TimeSequence::from_raw([1, 2]).unwrap(),
        );
        assert_eq!(p.objects, vec![oid(2), oid(4)]);
    }

    #[test]
    fn satisfies_checks_m_and_klg() {
        let c = Constraints::new(3, 4, 2, 2).unwrap();
        let good = Pattern::new(
            vec![oid(4), oid(5), oid(6)],
            TimeSequence::from_raw([3, 4, 6, 7]).unwrap(),
        );
        assert!(good.satisfies(&c));

        let too_few_objects = Pattern::new(
            vec![oid(4), oid(5)],
            TimeSequence::from_raw([3, 4, 6, 7]).unwrap(),
        );
        assert!(!too_few_objects.satisfies(&c));

        let bad_times = Pattern::new(
            vec![oid(4), oid(5), oid(6)],
            TimeSequence::from_raw([3, 4, 6]).unwrap(),
        );
        assert!(!bad_times.satisfies(&c));
    }

    #[test]
    fn subsumption() {
        let big = Pattern::new(
            vec![oid(1), oid(2), oid(3)],
            TimeSequence::from_raw([1, 2, 3, 4]).unwrap(),
        );
        let small = Pattern::new(
            vec![oid(1), oid(3)],
            TimeSequence::from_raw([2, 3]).unwrap(),
        );
        assert!(big.subsumes(&small));
        assert!(!small.subsumes(&big));
        assert!(big.subsumes(&big));

        let disjoint = Pattern::new(vec![oid(9)], TimeSequence::from_raw([1]).unwrap());
        assert!(!big.subsumes(&disjoint));
    }

    #[test]
    fn display_reads_naturally() {
        let p = Pattern::new(
            vec![oid(5), oid(6)],
            TimeSequence::from_raw([2, 3]).unwrap(),
        );
        assert_eq!(p.to_string(), "{o5, o6} @ ⟨2, 3⟩");
    }
}
