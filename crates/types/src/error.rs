//! Error types for constructing and validating the core data model.

use std::fmt;

/// Errors raised when constructing core types with invalid arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A `CP(M, K, L, G)` constraint set was inconsistent.
    InvalidConstraints(String),
    /// A time sequence was not strictly increasing.
    NonMonotonicTime {
        /// The previous (larger or equal) time.
        prev: u32,
        /// The offending time.
        next: u32,
    },
    /// A DBSCAN parameter was out of range.
    InvalidDbscanParams(String),
    /// A discretizer was configured with a non-positive interval.
    InvalidInterval(f64),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::InvalidConstraints(msg) => {
                write!(f, "invalid CP(M,K,L,G) constraints: {msg}")
            }
            TypeError::NonMonotonicTime { prev, next } => write!(
                f,
                "time sequence must be strictly increasing, got {next} after {prev}"
            ),
            TypeError::InvalidDbscanParams(msg) => write!(f, "invalid DBSCAN parameters: {msg}"),
            TypeError::InvalidInterval(v) => {
                write!(f, "discretization interval must be positive, got {v}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TypeError::NonMonotonicTime { prev: 5, next: 3 };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('3'));

        let e = TypeError::InvalidConstraints("K < L".into());
        assert!(e.to_string().contains("K < L"));

        let e = TypeError::InvalidInterval(-1.0);
        assert!(e.to_string().contains("-1"));

        let e = TypeError::InvalidDbscanParams("minPts = 0".into());
        assert!(e.to_string().contains("minPts"));
    }
}
