//! Snapshots (Definition 6) and cluster snapshots.

use crate::{ObjectId, Point, Timestamp};
use serde::{Deserialize, Serialize};

/// One object's appearance in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// The reporting object.
    pub id: ObjectId,
    /// Its location at the snapshot time.
    pub location: Point,
    /// Discretized time of this trajectory's previous report (stream
    /// synchronization information, see §4 of the paper).
    pub last_time: Option<Timestamp>,
}

/// A snapshot `S_t`: all object locations reported for discretized time `t`
/// (Definition 6).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// The discretized time of this snapshot.
    pub time: Timestamp,
    /// The participating objects. No id appears twice.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// An empty snapshot at `time`.
    pub fn new(time: Timestamp) -> Self {
        Snapshot {
            time,
            entries: Vec::new(),
        }
    }

    /// Builds a snapshot from `(id, location)` pairs (no last-time info).
    pub fn from_pairs(time: Timestamp, pairs: impl IntoIterator<Item = (ObjectId, Point)>) -> Self {
        let entries = pairs
            .into_iter()
            .map(|(id, location)| SnapshotEntry {
                id,
                location,
                last_time: None,
            })
            .collect();
        Snapshot { time, entries }
    }

    /// Adds one object report.
    pub fn push(&mut self, id: ObjectId, location: Point, last_time: Option<Timestamp>) {
        debug_assert!(
            !self.entries.iter().any(|e| e.id == id),
            "object {id} reported twice in snapshot {}",
            self.time
        );
        self.entries.push(SnapshotEntry {
            id,
            location,
            last_time,
        });
    }

    /// Number of objects in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no objects reported.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an object's location.
    pub fn location_of(&self, id: ObjectId) -> Option<Point> {
        self.entries.iter().find(|e| e.id == id).map(|e| e.location)
    }
}

/// A cluster: the ids of the objects that are density-connected at one
/// snapshot, sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Cluster(Vec<ObjectId>);

impl Cluster {
    /// Builds a cluster, sorting and deduplicating the member ids.
    pub fn new(mut members: Vec<ObjectId>) -> Self {
        members.sort_unstable();
        members.dedup();
        Cluster(members)
    }

    /// The member ids in ascending order.
    pub fn members(&self) -> &[ObjectId] {
        &self.0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search — members are sorted).
    pub fn contains(&self, id: ObjectId) -> bool {
        self.0.binary_search(&id).is_ok()
    }
}

impl From<Vec<ObjectId>> for Cluster {
    fn from(v: Vec<ObjectId>) -> Self {
        Cluster::new(v)
    }
}

/// The clustering result for one snapshot: the paper's *cluster snapshot*.
///
/// Noise points (objects in no cluster) are not listed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// The discretized time being clustered.
    pub time: Timestamp,
    /// The clusters found at this time.
    pub clusters: Vec<Cluster>,
}

impl ClusterSnapshot {
    /// An empty cluster snapshot.
    pub fn new(time: Timestamp) -> Self {
        ClusterSnapshot {
            time,
            clusters: Vec::new(),
        }
    }

    /// Builds a cluster snapshot from raw id groups.
    pub fn from_groups(time: Timestamp, groups: impl IntoIterator<Item = Vec<ObjectId>>) -> Self {
        ClusterSnapshot {
            time,
            clusters: groups.into_iter().map(Cluster::new).collect(),
        }
    }

    /// Average cluster size (objects per cluster); 0.0 when empty.
    ///
    /// This is the "average cluster size" series plotted in Figures 12–13 of
    /// the paper.
    pub fn avg_cluster_size(&self) -> f64 {
        if self.clusters.is_empty() {
            return 0.0;
        }
        let total: usize = self.clusters.iter().map(Cluster::len).sum();
        total as f64 / self.clusters.len() as f64
    }

    /// Canonicalizes for comparisons: sorts clusters lexicographically.
    pub fn normalize(&mut self) {
        self.clusters.sort_unstable_by(|a, b| {
            a.members()
                .first()
                .cmp(&b.members().first())
                .then_with(|| a.members().cmp(b.members()))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(v: u32) -> ObjectId {
        ObjectId(v)
    }

    #[test]
    fn snapshot_push_and_lookup() {
        let mut s = Snapshot::new(Timestamp(3));
        assert!(s.is_empty());
        s.push(oid(1), Point::new(1.0, 2.0), None);
        s.push(oid(2), Point::new(3.0, 4.0), Some(Timestamp(2)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.location_of(oid(2)), Some(Point::new(3.0, 4.0)));
        assert_eq!(s.location_of(oid(9)), None);
    }

    #[test]
    fn snapshot_from_pairs() {
        let s = Snapshot::from_pairs(
            Timestamp(0),
            [
                (oid(1), Point::new(0.0, 0.0)),
                (oid(2), Point::new(1.0, 1.0)),
            ],
        );
        assert_eq!(s.len(), 2);
        assert!(s.entries.iter().all(|e| e.last_time.is_none()));
    }

    #[test]
    fn cluster_sorts_and_dedups() {
        let c = Cluster::new(vec![oid(3), oid(1), oid(3), oid(2)]);
        assert_eq!(c.members(), &[oid(1), oid(2), oid(3)]);
        assert_eq!(c.len(), 3);
        assert!(c.contains(oid(2)));
        assert!(!c.contains(oid(4)));
    }

    #[test]
    fn avg_cluster_size() {
        let cs = ClusterSnapshot::from_groups(
            Timestamp(1),
            [vec![oid(1), oid(2)], vec![oid(3), oid(4), oid(5), oid(6)]],
        );
        assert_eq!(cs.avg_cluster_size(), 3.0);
        assert_eq!(ClusterSnapshot::new(Timestamp(0)).avg_cluster_size(), 0.0);
    }

    #[test]
    fn normalize_orders_clusters() {
        let mut cs = ClusterSnapshot::from_groups(
            Timestamp(1),
            [vec![oid(5), oid(6)], vec![oid(1), oid(2)]],
        );
        cs.normalize();
        assert_eq!(cs.clusters[0].members()[0], oid(1));
    }
}
