//! Time sequences (Definitions 1–3 of the paper).

use crate::{Timestamp, TypeError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A strictly increasing sequence of discretized timestamps.
///
/// The temporal component of a co-movement pattern. Provides the paper's
/// Definition 2 (*L-consecutive*: every maximal consecutive segment has
/// length ≥ L) and Definition 3 (*G-connected*: every gap between neighboring
/// times is ≤ G).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TimeSequence(Vec<Timestamp>);

impl TimeSequence {
    /// The empty sequence.
    pub fn new() -> Self {
        TimeSequence(Vec::new())
    }

    /// Builds a sequence from raw interval indices, validating strict
    /// monotonicity.
    pub fn from_raw(times: impl IntoIterator<Item = u32>) -> Result<Self, TypeError> {
        let mut seq = TimeSequence::new();
        for t in times {
            seq.push(Timestamp(t))?;
        }
        Ok(seq)
    }

    /// Appends a timestamp; it must exceed the current last element.
    pub fn push(&mut self, t: Timestamp) -> Result<(), TypeError> {
        if let Some(&last) = self.0.last() {
            if t <= last {
                return Err(TypeError::NonMonotonicTime {
                    prev: last.0,
                    next: t.0,
                });
            }
        }
        self.0.push(t);
        Ok(())
    }

    /// Number of elements, `|T|`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the sequence has no elements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The elements in increasing order.
    pub fn times(&self) -> &[Timestamp] {
        &self.0
    }

    /// The last (largest) time, `max(T)`.
    pub fn max(&self) -> Option<Timestamp> {
        self.0.last().copied()
    }

    /// The first (smallest) time.
    pub fn min(&self) -> Option<Timestamp> {
        self.0.first().copied()
    }

    /// Maximal consecutive segments as `(start, length)` pairs.
    ///
    /// `⟨1,2,4,5,6⟩` has segments `(1,2)` and `(4,3)`.
    pub fn segments(&self) -> Vec<(Timestamp, usize)> {
        let mut out = Vec::new();
        let mut iter = self.0.iter().copied();
        let Some(first) = iter.next() else {
            return out;
        };
        let mut start = first;
        let mut len = 1usize;
        let mut prev = first;
        for t in iter {
            if t.0 == prev.0 + 1 {
                len += 1;
            } else {
                out.push((start, len));
                start = t;
                len = 1;
            }
            prev = t;
        }
        out.push((start, len));
        out
    }

    /// Length of the last maximal consecutive segment (`|T_l|` in Lemma 5);
    /// zero for the empty sequence.
    pub fn last_segment_len(&self) -> usize {
        let mut len = 0usize;
        let mut expected: Option<u32> = None;
        for t in self.0.iter().rev() {
            match expected {
                None => {
                    len = 1;
                    expected = t.0.checked_sub(1);
                }
                Some(e) if t.0 == e => {
                    len += 1;
                    expected = t.0.checked_sub(1);
                }
                _ => break,
            }
        }
        len
    }

    /// Definition 2: every maximal consecutive segment has length ≥ `l`.
    ///
    /// The empty sequence is vacuously L-consecutive.
    pub fn is_l_consecutive(&self, l: usize) -> bool {
        self.segments().iter().all(|&(_, len)| len >= l)
    }

    /// Definition 3: every gap between neighboring times is ≤ `g`.
    pub fn is_g_connected(&self, g: u32) -> bool {
        self.0.windows(2).all(|w| w[1].0 - w[0].0 <= g)
    }

    /// True if the sequence witnesses the temporal part of a
    /// `CP(M, K, L, G)` pattern: `|T| ≥ k`, L-consecutive and G-connected.
    pub fn satisfies_klg(&self, k: usize, l: usize, g: u32) -> bool {
        self.len() >= k && self.is_l_consecutive(l) && self.is_g_connected(g)
    }
}

impl fmt::Display for TimeSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "⟩")
    }
}

impl From<TimeSequence> for Vec<Timestamp> {
    fn from(seq: TimeSequence) -> Self {
        seq.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_enforces_strict_monotonicity() {
        let mut t = TimeSequence::new();
        t.push(Timestamp(1)).unwrap();
        t.push(Timestamp(2)).unwrap();
        assert!(t.push(Timestamp(2)).is_err());
        assert!(t.push(Timestamp(1)).is_err());
        t.push(Timestamp(9)).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn paper_example_segments() {
        // T = ⟨1,2,4,5,6⟩ is 2-consecutive and 2-connected (paper §3.1).
        let t = TimeSequence::from_raw([1, 2, 4, 5, 6]).unwrap();
        assert_eq!(t.segments(), vec![(Timestamp(1), 2), (Timestamp(4), 3)]);
        assert!(t.is_l_consecutive(2));
        assert!(!t.is_l_consecutive(3));
        assert!(t.is_g_connected(2));
        assert!(!t.is_g_connected(1));
        assert_eq!(t.last_segment_len(), 3);
        assert_eq!(t.max(), Some(Timestamp(6)));
        assert_eq!(t.min(), Some(Timestamp(1)));
    }

    #[test]
    fn paper_example_t2_is_not_a_segment() {
        // T2 = ⟨1,2,4,5⟩: not one segment because time 3 is missing.
        let t = TimeSequence::from_raw([1, 2, 4, 5]).unwrap();
        assert_eq!(t.segments().len(), 2);
    }

    #[test]
    fn single_segment_detection() {
        let t = TimeSequence::from_raw([3, 4, 5, 6]).unwrap();
        assert_eq!(t.segments(), vec![(Timestamp(3), 4)]);
        assert_eq!(t.last_segment_len(), 4);
        assert!(t.satisfies_klg(4, 2, 2));
        assert!(t.satisfies_klg(4, 4, 1));
        assert!(!t.satisfies_klg(5, 2, 2));
    }

    #[test]
    fn empty_sequence_properties() {
        let t = TimeSequence::new();
        assert!(t.is_empty());
        assert!(t.segments().is_empty());
        assert_eq!(t.last_segment_len(), 0);
        assert!(t.is_l_consecutive(5));
        assert!(t.is_g_connected(1));
        assert!(!t.satisfies_klg(1, 1, 1));
        assert_eq!(t.max(), None);
    }

    #[test]
    fn singleton_sequence() {
        let t = TimeSequence::from_raw([7]).unwrap();
        assert_eq!(t.segments(), vec![(Timestamp(7), 1)]);
        assert_eq!(t.last_segment_len(), 1);
        assert!(t.is_g_connected(0));
        assert!(t.satisfies_klg(1, 1, 1));
    }

    #[test]
    fn co_movement_example_from_fig2() {
        // O = {o4,o5,o6} with T = ⟨3,4,6,7⟩ is CP(3,4,2,2)-valid temporally.
        let t = TimeSequence::from_raw([3, 4, 6, 7]).unwrap();
        assert!(t.satisfies_klg(4, 2, 2));
        // but fails when gaps may not exceed 1
        assert!(!t.satisfies_klg(4, 2, 1));
    }

    #[test]
    fn zero_timestamp_segment_at_origin() {
        let t = TimeSequence::from_raw([0, 1, 2]).unwrap();
        assert_eq!(t.last_segment_len(), 3);
        assert_eq!(t.segments(), vec![(Timestamp(0), 3)]);
    }

    #[test]
    fn display_formats_like_the_paper() {
        let t = TimeSequence::from_raw([1, 2, 4]).unwrap();
        assert_eq!(t.to_string(), "⟨1, 2, 4⟩");
    }

    #[test]
    fn from_raw_rejects_unordered_input() {
        assert!(TimeSequence::from_raw([3, 1]).is_err());
        assert!(TimeSequence::from_raw([3, 3]).is_err());
    }
}
