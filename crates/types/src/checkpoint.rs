//! The checkpoint data model: versioned, serde-backed snapshots of every
//! piece of long-lived detection state.
//!
//! The paper's job is stateful — open enumeration windows, per-member bit
//! strings, and the §4 time-alignment chains all live in operator memory —
//! so a crash forgets every candidate the stream has accumulated. These
//! types are the durable form of that state. They live in `icpe-types`
//! (rather than next to the live structures they mirror) so every layer of
//! the stack — `icpe-runtime`, `icpe-pattern`, `icpe-core`, `icpe-serve`,
//! `icpe-persist` — can speak the same schema without dependency cycles.
//!
//! ## Canonical form
//!
//! Producers of these types MUST emit canonical order: collections that are
//! hash maps in live state are sorted by their key (owner id, member id,
//! trajectory id) before serialization, and times ascend. This makes the
//! byte stream a pure function of the logical state: serialize → deserialize
//! → re-serialize is byte-identical, which the recovery property tests pin
//! down and the on-disk CRC relies on.
//!
//! ## Versioning
//!
//! [`CHECKPOINT_VERSION`] names the schema of [`PipelineCheckpoint`]. Any
//! change to these structs (field added/removed/renamed/reordered — field
//! order is part of the JSON byte format) must bump it; a golden-fixture
//! test in this crate fails otherwise, and restore refuses checkpoints whose
//! embedded version differs from the binary's.

use crate::ids::ObjectId;
use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Schema version embedded in every [`PipelineCheckpoint`]. Bump on ANY
/// change to the checkpoint structs (the golden-fixture schema test
/// enforces this).
///
/// v2: added the optional `routing` section (adaptive cell routing:
/// epoch, explicit cell→subtask assignments, learned per-cell loads).
///
/// v3: added the optional `sync` section (sharded GridSync merge tree:
/// cumulative dedup/seal counters plus any pending pair partitions,
/// captured as per-subtask pieces merged at the sink like the engine
/// section).
///
/// v4: added the optional `obs` section (cumulative metric-registry
/// counters summed per `(stage, name)` at the cut, so per-stage
/// observability survives a restore instead of resetting to zero).
///
/// v5: the `aligner` section is now assembled from per-shard pieces
/// (sharded aligner head): the frontier router deposits chains + counters,
/// each aligner shard deposits its buffered rows, and
/// [`AlignerCheckpoint::merge`] canonicalizes buffered snapshot rows by
/// object id — so the bytes are a pure function of the logical state
/// regardless of the writing deployment's shard count. The struct fields
/// are unchanged, but the canonical row order within `buffers` differs
/// from v4's arrival order, so v4 files are refused rather than reread
/// under the new canon.
///
/// v6: sub-cell refinement rides the `routing` section. [`CellAssignment`]
/// and [`CellLoadCheckpoint`] gain a `level` field (0 = base grid cell,
/// `d` = leaf sub-cell of a cell refined `d` times), [`RoutingCheckpoint`]
/// gains the refinement tree (`refinements`, per-base-cell depths — pure
/// cell coordinates, no subtask references, so it restores onto any
/// parallelism/shard count) plus the cumulative `splits`/`coalesces`
/// counters.
pub const CHECKPOINT_VERSION: u32 = 6;

/// Errors raised when restoring state from a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint was written by a different schema version.
    UnsupportedVersion {
        /// Version found in the checkpoint.
        found: u32,
        /// Version this binary supports.
        supported: u32,
    },
    /// The checkpoint's engine kind does not match the configured engine.
    EngineMismatch {
        /// Engine name recorded in the checkpoint ("BA", "FBA", "VBA").
        checkpoint: String,
        /// Engine name the configuration asks for.
        config: String,
    },
    /// The checkpoint is structurally valid JSON but semantically broken
    /// (e.g. a bit string whose length disagrees with its episode span).
    Invalid(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint schema version {found} is not supported (this binary speaks {supported})"
            ),
            CheckpointError::EngineMismatch { checkpoint, config } => write!(
                f,
                "checkpoint holds {checkpoint} engine state but the configuration runs {config}"
            ),
            CheckpointError::Invalid(msg) => write!(f, "invalid checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One trajectory's §4 *last time* chaining state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainCheckpoint {
    /// The trajectory.
    pub id: ObjectId,
    /// Largest time through which this trajectory's reports are fully
    /// known.
    pub clarified: Option<u32>,
    /// Received records whose `last_time` link has not connected yet, as
    /// `(last_time, own_time)` pairs in ascending `last_time` order.
    pub waiting: Vec<(u32, u32)>,
}

/// Durable form of the [`TimeAligner`](crate::Snapshot)-owning runtime
/// state: buffered (unsealed) snapshots, per-trajectory chains, the sealed
/// frontier, and the observability counters that must survive a restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlignerCheckpoint {
    /// Buffered, not-yet-sealed snapshots in ascending time order.
    pub buffers: Vec<Snapshot>,
    /// Per-trajectory chaining state, ascending by trajectory id.
    pub chains: Vec<ChainCheckpoint>,
    /// All times `< sealed_up_to` are sealed; `None` until the first seal.
    pub sealed_up_to: Option<u32>,
    /// Largest record time seen.
    pub max_seen: u32,
    /// Records dropped for arriving after their snapshot sealed
    /// (cumulative; rehydrated on restore so observability does not reset).
    pub late_dropped: u64,
}

impl AlignerCheckpoint {
    /// A checkpoint for an aligner that has seen nothing.
    pub fn empty() -> AlignerCheckpoint {
        AlignerCheckpoint {
            buffers: Vec::new(),
            chains: Vec::new(),
            sealed_up_to: None,
            max_seen: 0,
            late_dropped: 0,
        }
    }

    /// Merges per-shard aligner checkpoints into one deployment-independent
    /// checkpoint, mirroring [`SyncCheckpoint::merge`]: the late-drop
    /// counter sums, the clock fields (`sealed_up_to`, `max_seen`) take the
    /// max, chains concatenate and re-sort by trajectory id (shards own
    /// disjoint ids), and buffered snapshots union by time with their rows
    /// canonically sorted by id — so the merged bytes are a pure function
    /// of the logical state, independent of how many shards wrote pieces.
    pub fn merge(pieces: Vec<AlignerCheckpoint>) -> AlignerCheckpoint {
        let mut merged = AlignerCheckpoint::empty();
        let mut buffers: BTreeMap<u32, Snapshot> = BTreeMap::new();
        for piece in pieces {
            merged.late_dropped += piece.late_dropped;
            merged.max_seen = merged.max_seen.max(piece.max_seen);
            merged.sealed_up_to = match (merged.sealed_up_to, piece.sealed_up_to) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            merged.chains.extend(piece.chains);
            for snap in piece.buffers {
                buffers
                    .entry(snap.time.0)
                    .or_insert_with(|| Snapshot::new(snap.time))
                    .entries
                    .extend(snap.entries);
            }
        }
        merged.chains.sort_by_key(|c| c.id);
        merged.buffers = buffers
            .into_values()
            .filter(|s| !s.is_empty())
            .map(|mut s| {
                s.entries.sort_by_key(|e| e.id);
                s
            })
            .collect();
        merged
    }

    /// The restore piece for one aligner shard at the restored deployment:
    /// buffered rows and chains filtered to the trajectories `keep` selects
    /// (the same owner → shard mapping the head's exchange routes by), the
    /// clock fields replicated, and the cumulative late-drop counter
    /// included only when `with_counters` — restore it into one shard, or
    /// the next checkpoint's merge would multiply it by the shard count
    /// (the [`SyncCheckpoint::piece`] / `skipped_partitions` pattern).
    pub fn piece(&self, with_counters: bool, keep: impl Fn(ObjectId) -> bool) -> AlignerCheckpoint {
        AlignerCheckpoint {
            buffers: self
                .buffers
                .iter()
                .filter_map(|s| {
                    let entries: Vec<_> =
                        s.entries.iter().filter(|e| keep(e.id)).copied().collect();
                    (!entries.is_empty()).then_some(Snapshot {
                        time: s.time,
                        entries,
                    })
                })
                .collect(),
            chains: self.chains.iter().filter(|c| keep(c.id)).cloned().collect(),
            sealed_up_to: self.sealed_up_to,
            max_seen: self.max_seen,
            late_dropped: if with_counters { self.late_dropped } else { 0 },
        }
    }
}

/// One buffered partition row of an owner's η-window history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryRowCheckpoint {
    /// The discretized time of this row.
    pub time: u32,
    /// The owner's partition members at that time, ascending.
    pub members: Vec<ObjectId>,
}

/// Open η-window state for one partition owner (BA/FBA engines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowOwnerCheckpoint {
    /// The partition owner.
    pub owner: ObjectId,
    /// Pending window start times, ascending (the release queue).
    pub starts: Vec<u32>,
    /// Buffered partition history rows, ascending by time.
    pub history: Vec<HistoryRowCheckpoint>,
}

/// One (owner, member) co-clustering episode of the VBA engine — either an
/// open string or a closed candidate; the bits cover `[st, et]` inclusive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeCheckpoint {
    /// The co-clustered member.
    pub member: ObjectId,
    /// Episode start time (time of the first 1).
    pub st: u32,
    /// Episode end time (time of the last 1 so far).
    pub et: u32,
    /// The bits over `[st, et]` as an ASCII `0`/`1` string (first and last
    /// characters are always `1`).
    pub bits: String,
}

/// Per-owner VBA engine state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VbaOwnerCheckpoint {
    /// The partition owner.
    pub owner: ObjectId,
    /// Open (still extendable) episodes, ascending by member id.
    pub open: Vec<EpisodeCheckpoint>,
    /// Closed candidates with maximal time sequences, in insertion order
    /// (the order affects enumeration sequencing, not the pattern set, and
    /// is deterministic — so it is preserved rather than sorted).
    pub candidates: Vec<EpisodeCheckpoint>,
}

/// Durable form of one enumeration engine's state. A single schema covers
/// all three engines: `kind` discriminates, and only the matching owner
/// list is populated (the serde shim has no data-carrying enum derive, and
/// a flat struct keeps the wire format trivial to audit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// Engine name: `"BA"`, `"FBA"`, or `"VBA"`.
    pub kind: String,
    /// Last cluster-snapshot time the engine ticked through.
    pub last_time: Option<u32>,
    /// Partitions the Baseline refused to enumerate (blow-up guard); the
    /// counter must survive restore. Always 0 for FBA/VBA.
    pub skipped_partitions: u64,
    /// Open η-window state per owner (BA/FBA), ascending by owner id.
    pub window_owners: Vec<WindowOwnerCheckpoint>,
    /// Per-owner episode state (VBA), ascending by owner id.
    pub vba_owners: Vec<VbaOwnerCheckpoint>,
}

impl EngineCheckpoint {
    /// An empty checkpoint for an engine that has seen nothing.
    pub fn empty(kind: &str) -> EngineCheckpoint {
        EngineCheckpoint {
            kind: kind.to_string(),
            last_time: None,
            skipped_partitions: 0,
            window_owners: Vec::new(),
            vba_owners: Vec::new(),
        }
    }

    /// Merges per-subtask engine checkpoints (disjoint owner sets, shared
    /// clock) into one deployment-independent checkpoint. Owners are
    /// re-sorted so the merged form is canonical regardless of the
    /// parallelism that produced the pieces.
    pub fn merge(pieces: Vec<EngineCheckpoint>) -> Result<EngineCheckpoint, CheckpointError> {
        let Some(first) = pieces.first() else {
            return Err(CheckpointError::Invalid(
                "cannot merge zero engine checkpoints".into(),
            ));
        };
        let kind = first.kind.clone();
        let mut merged = EngineCheckpoint::empty(&kind);
        for piece in pieces {
            if piece.kind != kind {
                return Err(CheckpointError::EngineMismatch {
                    checkpoint: piece.kind,
                    config: kind,
                });
            }
            // Every subtask sees every broadcast tick, so the clocks agree;
            // take the max to be safe against empty subtasks.
            merged.last_time = merged.last_time.max(piece.last_time);
            merged.skipped_partitions += piece.skipped_partitions;
            merged.window_owners.extend(piece.window_owners);
            merged.vba_owners.extend(piece.vba_owners);
        }
        merged.window_owners.sort_by_key(|o| o.owner);
        merged.vba_owners.sort_by_key(|o| o.owner);
        Ok(merged)
    }
}

/// One explicit cell→subtask route of the adaptive routing table. Cells
/// are stored by grid coordinate (not key hash): hashes are process-local
/// (see `shard`), so restore re-derives them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellAssignment {
    /// Cell column index (at `level`'s resolution).
    pub x: i64,
    /// Cell row index (at `level`'s resolution).
    pub y: i64,
    /// Refinement level: 0 = base grid cell, `d` = leaf sub-cell of a base
    /// cell refined `d` times.
    pub level: u8,
    /// The subtask this cell is pinned to. Restoring at a smaller
    /// parallelism drops assignments whose subtask no longer exists (they
    /// fall back to consistent hashing until the balancer re-learns).
    pub subtask: u32,
}

/// One cell's learned load (EWMA of records + pairs per window), in
/// milli-units so the byte format stays integer-exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLoadCheckpoint {
    /// Cell column index (at `level`'s resolution).
    pub x: i64,
    /// Cell row index (at `level`'s resolution).
    pub y: i64,
    /// Refinement level of the cell the load was observed at.
    pub level: u8,
    /// EWMA load × 1000, rounded.
    pub load_milli: u64,
}

/// One refined base cell's sub-cell depth. Pure cell coordinates — no
/// subtask references — so the refinement tree restores unchanged onto a
/// deployment with a different parallelism or shard count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRefinement {
    /// Base (level-0) cell column index.
    pub x: i64,
    /// Base (level-0) cell row index.
    pub y: i64,
    /// Refinement depth: the cell is partitioned into `4^depth` leaves.
    pub depth: u8,
}

/// Durable form of the adaptive routing layer: the epoch-versioned
/// cell→subtask table plus the load statistics it was learned from, so a
/// restored deployment resumes on the learned placement instead of
/// re-discovering every hotspot from scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingCheckpoint {
    /// Routing epoch at the cut (0 = never rebalanced; every table swap
    /// increments it).
    pub epoch: u64,
    /// Explicit assignments, ascending by `(x, y, level)`. Unlisted cells
    /// route by consistent hash.
    pub assignments: Vec<CellAssignment>,
    /// Learned per-cell loads, ascending by `(x, y, level)`.
    pub loads: Vec<CellLoadCheckpoint>,
    /// Cells whose route changed across all epochs so far (cumulative
    /// observability counter; survives restore).
    pub cells_migrated: u64,
    /// Sub-cell refinement tree: refined base cells ascending by `(x, y)`.
    pub refinements: Vec<CellRefinement>,
    /// Cumulative cell splits across the run (observability counter).
    pub splits: u64,
    /// Cumulative cell coalesces across the run (observability counter).
    pub coalesces: u64,
}

/// One unsealed window of a GridSync shard: the deduplicated neighbor
/// pairs received for `time` so far, in ascending canonical order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncWindowCheckpoint {
    /// The window's discretized time.
    pub time: u32,
    /// Canonical `(a, b)` pairs with `a ≤ b`, ascending.
    pub pairs: Vec<(ObjectId, ObjectId)>,
}

/// Durable form of the sharded GridSync merge path: cumulative dedup and
/// window-seal observability counters, plus any pending (received but not
/// yet sealed) pair partitions. Captured as one piece per sync subtask
/// (plus one from the tree finalizer) and merged at the sink, mirroring
/// the [`EngineCheckpoint`] pattern; restore owner-filters the pending
/// pairs back onto the shard that owns them at the restored parallelism.
///
/// In the barrier-aligned dataflow `pending` is provably empty at every
/// cut — the barrier trails the boundary tick of each sealed window on
/// every channel — but the schema carries it so that invariant is
/// *checkable* on restore rather than silently assumed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncCheckpoint {
    /// Distinct neighbor pairs merged across all sealed windows
    /// (cumulative).
    pub pairs_merged: u64,
    /// Duplicate pair discoveries suppressed (cumulative — the Lemma-1
    /// residue the dedup exists for).
    pub duplicates: u64,
    /// Windows sealed through the merge tree (cumulative; counted by the
    /// finalizer).
    pub windows_sealed: u64,
    /// Pending pair partitions, ascending by time.
    pub pending: Vec<SyncWindowCheckpoint>,
}

impl SyncCheckpoint {
    /// A checkpoint for a sync path that has seen nothing.
    pub fn empty() -> SyncCheckpoint {
        SyncCheckpoint {
            pairs_merged: 0,
            duplicates: 0,
            windows_sealed: 0,
            pending: Vec::new(),
        }
    }

    /// Merges per-subtask sync checkpoints into one deployment-independent
    /// checkpoint: counters sum, pending windows union by time with their
    /// pair sets re-canonicalized (sorted, deduplicated) — shards hold
    /// disjoint pair sets, so the dedup is a safety net, not a semantic.
    pub fn merge(pieces: Vec<SyncCheckpoint>) -> SyncCheckpoint {
        let mut merged = SyncCheckpoint::empty();
        let mut pending: BTreeMap<u32, Vec<(ObjectId, ObjectId)>> = BTreeMap::new();
        for piece in pieces {
            merged.pairs_merged += piece.pairs_merged;
            merged.duplicates += piece.duplicates;
            merged.windows_sealed += piece.windows_sealed;
            for w in piece.pending {
                pending.entry(w.time).or_default().extend(w.pairs);
            }
        }
        merged.pending = pending
            .into_iter()
            .map(|(time, mut pairs)| {
                pairs.sort_unstable();
                pairs.dedup();
                SyncWindowCheckpoint { time, pairs }
            })
            .collect();
        merged
    }

    /// The restore piece for one sync subtask at the restored deployment:
    /// pending pairs filtered to the owners `keep` selects (the same
    /// pair-owner → shard mapping the exchange routes by), cumulative
    /// counters included only when `with_counters` (restore them into one
    /// subtask, or the next checkpoint's merge would multiply them by the
    /// parallelism — the [`EngineCheckpoint`] `skipped_partitions`
    /// pattern).
    pub fn piece(&self, with_counters: bool, keep: impl Fn(ObjectId) -> bool) -> SyncCheckpoint {
        SyncCheckpoint {
            pairs_merged: if with_counters { self.pairs_merged } else { 0 },
            duplicates: if with_counters { self.duplicates } else { 0 },
            windows_sealed: 0,
            pending: self
                .pending
                .iter()
                .filter_map(|w| {
                    let pairs: Vec<(ObjectId, ObjectId)> =
                        w.pairs.iter().copied().filter(|&(a, _)| keep(a)).collect();
                    (!pairs.is_empty()).then_some(SyncWindowCheckpoint {
                        time: w.time,
                        pairs,
                    })
                })
                .collect(),
        }
    }
}

/// One cumulative metric-registry counter at the checkpoint cut, summed
/// across the subtasks of its stage (the restored deployment may use a
/// different parallelism, so only the per-stage total is meaningful).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsCounterEntry {
    /// The stage (or exchange-hop receiving stage) that owns the counter.
    pub stage: String,
    /// The metric family name (e.g. `stage_records_in_total`). Names
    /// ending in `seconds_total` hold nanoseconds.
    pub name: String,
    /// Cumulative value at the cut.
    pub value: u64,
}

/// Durable form of the metric registry's cumulative counters, canonically
/// sorted by `(stage, name)` with zero-valued series omitted. Gauges and
/// histogram samples are wall-clock-bound and restart empty.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsCheckpoint {
    /// Counter totals, ascending by `(stage, name)`.
    pub counters: Vec<ObsCounterEntry>,
}

/// Pipeline progress gauges frozen at the checkpoint cut; rehydrated into
/// the metrics recorder on restore so counters do not reset to zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressCheckpoint {
    /// Snapshots fully processed (sealed through enumeration) before the
    /// cut.
    pub snapshots_completed: u64,
    /// Records dropped as late before the cut.
    pub late_records: u64,
    /// Largest snapshot time fully processed before the cut, if any.
    pub max_sealed: Option<u32>,
}

/// A complete, consistent snapshot of a detection pipeline: everything
/// needed to resume the job as if it had never stopped, provided the input
/// stream is replayed from `records_ingested`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineCheckpoint {
    /// Schema version ([`CHECKPOINT_VERSION`] at write time).
    pub version: u32,
    /// Monotone checkpoint sequence number within one pipeline run.
    pub seq: u64,
    /// Records the aligner consumed before the checkpoint barrier — the
    /// replay offset: feed the restored pipeline the input stream starting
    /// at this record index and the run is equivalent to an uninterrupted
    /// one.
    pub records_ingested: u64,
    /// Time-alignment state.
    pub aligner: AlignerCheckpoint,
    /// Merged enumeration-engine state (deployment-independent: restore
    /// may use a different parallelism).
    pub engine: EngineCheckpoint,
    /// Observability counters at the cut.
    pub progress: ProgressCheckpoint,
    /// Adaptive routing state (`None` when the deployment routes
    /// statically or runs a clusterer without a keyed grid stage).
    pub routing: Option<RoutingCheckpoint>,
    /// Sharded GridSync merge state (`None` for clusterers without a
    /// grid sync stage, i.e. GDC).
    pub sync: Option<SyncCheckpoint>,
    /// Cumulative metric-registry counters at the cut (`None` only in
    /// checkpoints upgraded from pre-v4 schemas).
    pub obs: Option<ObsCheckpoint>,
}

impl PipelineCheckpoint {
    /// Validates the embedded schema version.
    pub fn check_version(&self) -> Result<(), CheckpointError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: self.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        Ok(())
    }
}

/// One trajectory's server-side stamping state (see
/// [`Discretizer`](crate::Discretizer)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryStamp {
    /// The trajectory.
    pub id: ObjectId,
    /// Last discretized tick emitted for it.
    pub last_tick: u32,
}

/// Durable form of the server-side [`Discretizer`](crate::Discretizer):
/// without it, a restarted server would re-admit duplicate ticks and break
/// every trajectory's *last time* chain across the restart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscretizerCheckpoint {
    /// Clock time mapping to interval 0.
    pub epoch: f64,
    /// Interval duration in seconds.
    pub interval: f64,
    /// Per-trajectory last emitted tick, ascending by trajectory id.
    pub last_seen: Vec<TrajectoryStamp>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Timestamp;

    fn sample_engine() -> EngineCheckpoint {
        EngineCheckpoint {
            kind: "FBA".into(),
            last_time: Some(7),
            skipped_partitions: 0,
            window_owners: vec![WindowOwnerCheckpoint {
                owner: ObjectId(3),
                starts: vec![5, 7],
                history: vec![HistoryRowCheckpoint {
                    time: 5,
                    members: vec![ObjectId(4), ObjectId(9)],
                }],
            }],
            vba_owners: Vec::new(),
        }
    }

    #[test]
    fn version_check() {
        let mut ckpt = PipelineCheckpoint {
            version: CHECKPOINT_VERSION,
            seq: 1,
            records_ingested: 10,
            aligner: AlignerCheckpoint {
                buffers: vec![Snapshot::new(Timestamp(3))],
                chains: Vec::new(),
                sealed_up_to: Some(3),
                max_seen: 4,
                late_dropped: 2,
            },
            engine: sample_engine(),
            progress: ProgressCheckpoint {
                snapshots_completed: 3,
                late_records: 2,
                max_sealed: Some(2),
            },
            routing: Some(RoutingCheckpoint {
                epoch: 4,
                assignments: vec![CellAssignment {
                    x: -2,
                    y: 5,
                    level: 0,
                    subtask: 1,
                }],
                loads: vec![CellLoadCheckpoint {
                    x: -2,
                    y: 5,
                    level: 0,
                    load_milli: 1500,
                }],
                cells_migrated: 3,
                refinements: vec![CellRefinement {
                    x: -2,
                    y: 5,
                    depth: 1,
                }],
                splits: 1,
                coalesces: 0,
            }),
            sync: Some(SyncCheckpoint {
                pairs_merged: 120,
                duplicates: 7,
                windows_sealed: 3,
                pending: Vec::new(),
            }),
            obs: Some(ObsCheckpoint {
                counters: vec![ObsCounterEntry {
                    stage: "align".into(),
                    name: "stage_records_in_total".into(),
                    value: 10,
                }],
            }),
        };
        assert!(ckpt.check_version().is_ok());
        ckpt.version = CHECKPOINT_VERSION + 1;
        assert_eq!(
            ckpt.check_version(),
            Err(CheckpointError::UnsupportedVersion {
                found: CHECKPOINT_VERSION + 1,
                supported: CHECKPOINT_VERSION
            })
        );
    }

    #[test]
    fn merge_sums_and_sorts() {
        let mut a = sample_engine();
        a.skipped_partitions = 2;
        let mut b = EngineCheckpoint::empty("FBA");
        b.last_time = Some(7);
        b.skipped_partitions = 1;
        b.window_owners.push(WindowOwnerCheckpoint {
            owner: ObjectId(1),
            starts: vec![7],
            history: Vec::new(),
        });
        let merged = EngineCheckpoint::merge(vec![a, b]).unwrap();
        assert_eq!(merged.skipped_partitions, 3);
        assert_eq!(merged.last_time, Some(7));
        let owners: Vec<u32> = merged.window_owners.iter().map(|o| o.owner.0).collect();
        assert_eq!(owners, vec![1, 3], "owners re-sorted canonically");
    }

    #[test]
    fn merge_rejects_mixed_kinds() {
        let a = EngineCheckpoint::empty("FBA");
        let b = EngineCheckpoint::empty("VBA");
        assert!(matches!(
            EngineCheckpoint::merge(vec![a, b]),
            Err(CheckpointError::EngineMismatch { .. })
        ));
        assert!(EngineCheckpoint::merge(Vec::new()).is_err());
    }

    #[test]
    fn sync_merge_sums_counters_and_canonicalizes_pending() {
        let a = SyncCheckpoint {
            pairs_merged: 10,
            duplicates: 2,
            windows_sealed: 0,
            pending: vec![SyncWindowCheckpoint {
                time: 4,
                pairs: vec![(ObjectId(5), ObjectId(9))],
            }],
        };
        let b = SyncCheckpoint {
            pairs_merged: 7,
            duplicates: 1,
            windows_sealed: 5,
            pending: vec![
                SyncWindowCheckpoint {
                    time: 4,
                    pairs: vec![(ObjectId(1), ObjectId(2)), (ObjectId(5), ObjectId(9))],
                },
                SyncWindowCheckpoint {
                    time: 6,
                    pairs: vec![(ObjectId(3), ObjectId(4))],
                },
            ],
        };
        let merged = SyncCheckpoint::merge(vec![a, b]);
        assert_eq!(merged.pairs_merged, 17);
        assert_eq!(merged.duplicates, 3);
        assert_eq!(merged.windows_sealed, 5);
        assert_eq!(merged.pending.len(), 2);
        assert_eq!(merged.pending[0].time, 4);
        assert_eq!(
            merged.pending[0].pairs,
            vec![(ObjectId(1), ObjectId(2)), (ObjectId(5), ObjectId(9))],
            "cross-piece duplicates collapse, order canonical"
        );
        assert_eq!(merged.pending[1].time, 6);
        assert!(SyncCheckpoint::merge(Vec::new()).pending.is_empty());
    }

    #[test]
    fn sync_piece_owner_filters_and_restores_counters_once() {
        let merged = SyncCheckpoint {
            pairs_merged: 40,
            duplicates: 4,
            windows_sealed: 9,
            pending: vec![SyncWindowCheckpoint {
                time: 2,
                pairs: vec![
                    (ObjectId(1), ObjectId(2)),
                    (ObjectId(2), ObjectId(3)),
                    (ObjectId(7), ObjectId(9)),
                ],
            }],
        };
        let even = merged.piece(true, |o| o.0 % 2 == 0);
        assert_eq!(even.pairs_merged, 40);
        assert_eq!(even.duplicates, 4);
        assert_eq!(even.windows_sealed, 0, "the finalizer owns the seal count");
        assert_eq!(even.pending[0].pairs, vec![(ObjectId(2), ObjectId(3))]);
        let odd = merged.piece(false, |o| o.0 % 2 == 1);
        assert_eq!(odd.pairs_merged, 0);
        assert_eq!(
            odd.pending[0].pairs,
            vec![(ObjectId(1), ObjectId(2)), (ObjectId(7), ObjectId(9))]
        );
        // Windows with no surviving pairs vanish from the piece.
        let none = merged.piece(false, |_| false);
        assert!(none.pending.is_empty());
    }

    #[test]
    fn aligner_merge_sums_counters_and_canonicalizes_rows() {
        let mut shard_a = Snapshot::new(Timestamp(4));
        shard_a.push(ObjectId(9), crate::Point::new(1.0, 0.0), Some(Timestamp(3)));
        let mut shard_b = Snapshot::new(Timestamp(4));
        shard_b.push(ObjectId(2), crate::Point::new(0.0, 1.0), None);
        let router = AlignerCheckpoint {
            buffers: Vec::new(),
            chains: vec![
                ChainCheckpoint {
                    id: ObjectId(9),
                    clarified: Some(4),
                    waiting: Vec::new(),
                },
                ChainCheckpoint {
                    id: ObjectId(2),
                    clarified: Some(3),
                    waiting: vec![(5, 6)],
                },
            ],
            sealed_up_to: Some(4),
            max_seen: 6,
            late_dropped: 3,
        };
        let piece = |snap: Snapshot| AlignerCheckpoint {
            buffers: vec![snap],
            chains: Vec::new(),
            sealed_up_to: None,
            max_seen: 0,
            late_dropped: 0,
        };
        // Piece order must not matter: the merged form is canonical.
        let m1 = AlignerCheckpoint::merge(vec![
            router.clone(),
            piece(shard_a.clone()),
            piece(shard_b.clone()),
        ]);
        let m2 = AlignerCheckpoint::merge(vec![piece(shard_b), router, piece(shard_a)]);
        assert_eq!(m1, m2, "merge is independent of piece order");
        assert_eq!(m1.late_dropped, 3);
        assert_eq!(m1.sealed_up_to, Some(4));
        assert_eq!(m1.max_seen, 6);
        let chain_ids: Vec<u32> = m1.chains.iter().map(|c| c.id.0).collect();
        assert_eq!(chain_ids, vec![2, 9], "chains re-sorted canonically");
        assert_eq!(m1.buffers.len(), 1);
        let row_ids: Vec<u32> = m1.buffers[0].entries.iter().map(|e| e.id.0).collect();
        assert_eq!(row_ids, vec![2, 9], "rows sorted by id within a time");
    }

    #[test]
    fn aligner_piece_owner_filters_and_restores_counters_once() {
        let mut buffered = Snapshot::new(Timestamp(7));
        buffered.push(ObjectId(1), crate::Point::new(0.0, 0.0), None);
        buffered.push(ObjectId(2), crate::Point::new(1.0, 0.0), Some(Timestamp(6)));
        buffered.push(ObjectId(4), crate::Point::new(2.0, 0.0), None);
        let merged = AlignerCheckpoint {
            buffers: vec![buffered],
            chains: vec![
                ChainCheckpoint {
                    id: ObjectId(1),
                    clarified: Some(7),
                    waiting: Vec::new(),
                },
                ChainCheckpoint {
                    id: ObjectId(2),
                    clarified: Some(6),
                    waiting: Vec::new(),
                },
            ],
            sealed_up_to: Some(7),
            max_seen: 9,
            late_dropped: 5,
        };
        let even = merged.piece(true, |o| o.0 % 2 == 0);
        assert_eq!(even.late_dropped, 5, "counters restore into one shard");
        let even_rows: Vec<u32> = even.buffers[0].entries.iter().map(|e| e.id.0).collect();
        assert_eq!(even_rows, vec![2, 4]);
        assert_eq!(even.chains.len(), 1);
        assert_eq!(even.chains[0].id, ObjectId(2));
        assert_eq!(even.sealed_up_to, Some(7), "clock fields replicate");
        assert_eq!(even.max_seen, 9);
        let odd = merged.piece(false, |o| o.0 % 2 == 1);
        assert_eq!(odd.late_dropped, 0, "only one piece carries the counter");
        let odd_rows: Vec<u32> = odd.buffers[0].entries.iter().map(|e| e.id.0).collect();
        assert_eq!(odd_rows, vec![1]);
        // Times with no surviving rows vanish from the piece.
        let none = merged.piece(false, |_| false);
        assert!(none.buffers.is_empty());
        // A reshard round-trip conserves the totals: merging every piece
        // back yields the counters exactly once.
        let roundtrip = AlignerCheckpoint::merge(vec![even, odd]);
        assert_eq!(roundtrip.late_dropped, merged.late_dropped);
        assert_eq!(roundtrip, merged);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let ckpt = AlignerCheckpoint {
            buffers: vec![Snapshot::new(Timestamp(9))],
            chains: vec![ChainCheckpoint {
                id: ObjectId(1),
                clarified: Some(8),
                waiting: vec![(10, 12)],
            }],
            sealed_up_to: Some(9),
            max_seen: 12,
            late_dropped: 4,
        };
        let json = serde_json::to_string(&ckpt).unwrap();
        let back: AlignerCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn errors_display() {
        let e = CheckpointError::EngineMismatch {
            checkpoint: "VBA".into(),
            config: "FBA".into(),
        };
        assert!(e.to_string().contains("VBA") && e.to_string().contains("FBA"));
        assert!(CheckpointError::Invalid("x".into())
            .to_string()
            .contains('x'));
    }
}
