//! The sharding vocabulary: one stable key-hash used everywhere a record,
//! cell, or owner is mapped to a subtask.
//!
//! Both the runtime's keyed exchanges and the checkpoint-restore
//! resharding must agree on how a key maps to a subtask — if the routing
//! hash and the restore hash ever drifted apart, a restored deployment
//! would load an owner's state on one subtask while the exchange keeps
//! routing its partitions to another, silently splitting windows. Keeping
//! the helpers here (the one crate every layer already depends on) makes
//! that drift impossible.
//!
//! The hash is `std`'s [`DefaultHasher`] with its default keys: stable
//! within a process, which is all routing needs. Nothing persistent stores
//! raw hashes — checkpoints store cell coordinates and owner ids and
//! re-hash on restore — so the lack of a cross-version guarantee is fine.

use crate::ids::ObjectId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The stable key hash of any hashable key (grid cells, owner ids).
pub fn stable_hash<T: Hash>(key: &T) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// The key hash of a trajectory/owner id — the enumeration stage's
/// partition key and the restore-resharding owner filter.
pub fn hash_id(id: ObjectId) -> u64 {
    stable_hash(&id)
}

/// The consistent-hash subtask of a key hash at parallelism `n` — the
/// static route, and the fallback for keys a dynamic routing table does
/// not map explicitly.
pub fn subtask_for(hash: u64, n: usize) -> usize {
    debug_assert!(n >= 1, "parallelism must be ≥ 1");
    (hash % n.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(stable_hash(&(3i64, -7i64)), stable_hash(&(3i64, -7i64)));
        assert_eq!(hash_id(ObjectId(42)), hash_id(ObjectId(42)));
        assert_ne!(hash_id(ObjectId(42)), hash_id(ObjectId(43)));
    }

    #[test]
    fn subtask_is_in_range() {
        for n in 1..9usize {
            for k in 0..100u64 {
                assert!(subtask_for(stable_hash(&k), n) < n);
            }
        }
    }

    #[test]
    fn subtask_spreads_keys() {
        let mut seen = [false; 4];
        for k in 0..64u64 {
            seen[subtask_for(stable_hash(&k), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all subtasks receive some keys");
    }
}
