//! Time discretization (Definition 1 of the paper).
//!
//! Maps real clock times to indices of fixed-duration intervals. The interval
//! duration must be chosen with the dataset's sampling rate in mind (the
//! paper uses 1 s for Brinkhoff and 5 s for GeoLife/Taxi): too small and
//! trajectories look gappy; too large and distinct reports collapse into one
//! snapshot.

use crate::checkpoint::{DiscretizerCheckpoint, TrajectoryStamp};
use crate::{GpsRecord, ObjectId, RawRecord, Timestamp, TypeError};
use std::collections::HashMap;

/// Maps raw clock times to discretized [`Timestamp`]s and annotates records
/// with their trajectory's *last time* (see [`GpsRecord::last_time`]).
///
/// The discretizer is a stateful streaming operator: it remembers, per
/// trajectory, the last discretized time it emitted. If several raw records
/// of one trajectory collapse into the same interval, only the first is kept
/// (the paper flags double-reports within one interval as an artifact to
/// avoid).
#[derive(Debug, Clone)]
pub struct Discretizer {
    epoch: f64,
    interval: f64,
    last_seen: HashMap<ObjectId, Timestamp>,
}

impl Discretizer {
    /// Creates a discretizer with the given stream epoch (the clock time that
    /// maps to interval 0) and interval duration in seconds.
    pub fn new(epoch: f64, interval: f64) -> Result<Self, TypeError> {
        if interval <= 0.0 || !interval.is_finite() {
            return Err(TypeError::InvalidInterval(interval));
        }
        Ok(Discretizer {
            epoch,
            interval,
            last_seen: HashMap::new(),
        })
    }

    /// The interval duration in seconds.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// The stream epoch (the clock time mapping to interval 0).
    ///
    /// Together with [`Discretizer::interval`] this fully determines
    /// [`Discretizer::discretize_time`], which is a *pure* function of the
    /// two — callers that only need tick projection (e.g. ingestion-edge
    /// skew control batching records without the stamping lock) can copy
    /// the pair once and project locally.
    pub fn epoch(&self) -> f64 {
        self.epoch
    }

    /// Maps a raw clock time to its interval index. Times before the epoch
    /// clamp to interval 0.
    pub fn discretize_time(&self, time: f64) -> Timestamp {
        let idx = ((time - self.epoch) / self.interval).floor();
        Timestamp(if idx < 0.0 { 0 } else { idx as u32 })
    }

    /// Discretizes one raw record.
    ///
    /// Returns `None` when the record falls into the same interval as (or an
    /// earlier interval than) the trajectory's previous record — i.e. it is a
    /// duplicate or out-of-order report that the discretizer drops.
    pub fn push(&mut self, raw: &RawRecord) -> Option<GpsRecord> {
        let t = self.discretize_time(raw.time);
        let last = self.last_seen.get(&raw.id).copied();
        if let Some(prev) = last {
            if t <= prev {
                return None;
            }
        }
        self.last_seen.insert(raw.id, t);
        Some(GpsRecord::new(raw.id, raw.location, t, last))
    }

    /// Number of distinct trajectories seen so far.
    pub fn trajectories_seen(&self) -> usize {
        self.last_seen.len()
    }

    /// Captures the stamping state in durable form (canonical order:
    /// ascending trajectory id).
    pub fn checkpoint(&self) -> DiscretizerCheckpoint {
        let mut last_seen: Vec<TrajectoryStamp> = self
            .last_seen
            .iter()
            .map(|(&id, &t)| TrajectoryStamp { id, last_tick: t.0 })
            .collect();
        last_seen.sort_by_key(|s| s.id);
        DiscretizerCheckpoint {
            epoch: self.epoch,
            interval: self.interval,
            last_seen,
        }
    }

    /// Rebuilds a discretizer from a checkpoint, so a restarted server
    /// keeps rejecting duplicate ticks and keeps every trajectory's *last
    /// time* chain intact across the restart.
    pub fn from_checkpoint(ckpt: &DiscretizerCheckpoint) -> Result<Self, TypeError> {
        let mut d = Discretizer::new(ckpt.epoch, ckpt.interval)?;
        d.last_seen = ckpt
            .last_seen
            .iter()
            .map(|s| (s.id, Timestamp(s.last_tick)))
            .collect();
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn raw(id: u32, t: f64) -> RawRecord {
        RawRecord::new(ObjectId(id), Point::new(0.0, 0.0), t)
    }

    #[test]
    fn rejects_bad_interval() {
        assert!(Discretizer::new(0.0, 0.0).is_err());
        assert!(Discretizer::new(0.0, -5.0).is_err());
        assert!(Discretizer::new(0.0, f64::NAN).is_err());
        assert!(Discretizer::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn paper_example_discretization() {
        // Paper §3.1: epoch 13:00:20, 5 s intervals; times 21,24,28,32,42 s
        // after 13:00:00 discretize to 0,0,1,2,4.
        let d = Discretizer::new(20.0, 5.0).unwrap();
        assert_eq!(d.discretize_time(21.0), Timestamp(0));
        assert_eq!(d.discretize_time(24.0), Timestamp(0));
        assert_eq!(d.discretize_time(28.0), Timestamp(1));
        assert_eq!(d.discretize_time(32.0), Timestamp(2));
        assert_eq!(d.discretize_time(42.0), Timestamp(4));
    }

    #[test]
    fn duplicate_interval_reports_are_dropped() {
        let mut d = Discretizer::new(0.0, 5.0).unwrap();
        assert!(d.push(&raw(1, 1.0)).is_some()); // interval 0
        assert!(d.push(&raw(1, 4.0)).is_none()); // still interval 0 → dropped
        assert!(d.push(&raw(1, 6.0)).is_some()); // interval 1
        assert_eq!(d.trajectories_seen(), 1);
    }

    #[test]
    fn last_time_chains_per_trajectory() {
        let mut d = Discretizer::new(0.0, 1.0).unwrap();
        let r1 = d.push(&raw(1, 0.5)).unwrap();
        assert_eq!(r1.time, Timestamp(0));
        assert_eq!(r1.last_time, None);

        let r2 = d.push(&raw(1, 2.5)).unwrap(); // skips interval 1
        assert_eq!(r2.time, Timestamp(2));
        assert_eq!(r2.last_time, Some(Timestamp(0)));

        // Second trajectory has its own chain.
        let s1 = d.push(&raw(2, 3.0)).unwrap();
        assert_eq!(s1.last_time, None);
        assert_eq!(d.trajectories_seen(), 2);
    }

    #[test]
    fn out_of_order_raw_records_are_dropped() {
        let mut d = Discretizer::new(0.0, 1.0).unwrap();
        assert!(d.push(&raw(1, 5.0)).is_some());
        assert!(d.push(&raw(1, 3.0)).is_none());
    }

    #[test]
    fn checkpoint_round_trip_preserves_stamping() {
        let mut d = Discretizer::new(0.0, 1.0).unwrap();
        d.push(&raw(2, 5.0)).unwrap();
        d.push(&raw(1, 3.0)).unwrap();
        let ckpt = d.checkpoint();
        assert_eq!(ckpt.last_seen.len(), 2);
        assert!(
            ckpt.last_seen[0].id < ckpt.last_seen[1].id,
            "canonical order"
        );

        let mut restored = Discretizer::from_checkpoint(&ckpt).unwrap();
        // Duplicate tick still rejected after the restore.
        assert!(restored.push(&raw(1, 3.5)).is_none());
        // The cross-restart record keeps its last-time link.
        let r = restored.push(&raw(1, 7.0)).unwrap();
        assert_eq!(r.last_time, Some(Timestamp(3)));
        assert_eq!(restored.checkpoint(), ckpt_after(&d, 1, 7.0));
    }

    /// The original discretizer fed the same record, for comparison.
    fn ckpt_after(d: &Discretizer, id: u32, t: f64) -> crate::checkpoint::DiscretizerCheckpoint {
        let mut d = d.clone();
        d.push(&raw(id, t));
        d.checkpoint()
    }

    #[test]
    fn pre_epoch_times_clamp_to_zero() {
        let d = Discretizer::new(100.0, 5.0).unwrap();
        assert_eq!(d.discretize_time(3.0), Timestamp(0));
    }
}
