//! Property tests for the checkpoint store: any truncation or single-byte
//! corruption of a checkpoint file is rejected with a typed error — never
//! a panic, and never a silently wrong checkpoint.

use icpe_persist::{CheckpointStore, PersistError};
use icpe_types::{
    AlignerCheckpoint, EngineCheckpoint, ObsCheckpoint, ObsCounterEntry, PipelineCheckpoint,
    ProgressCheckpoint, SyncCheckpoint, CHECKPOINT_VERSION,
};
use proptest::prelude::*;

fn sample() -> PipelineCheckpoint {
    PipelineCheckpoint {
        version: CHECKPOINT_VERSION,
        seq: 3,
        records_ingested: 123,
        aligner: AlignerCheckpoint {
            buffers: Vec::new(),
            chains: Vec::new(),
            sealed_up_to: Some(7),
            max_seen: 9,
            late_dropped: 1,
        },
        engine: EngineCheckpoint::empty("FBA"),
        progress: ProgressCheckpoint {
            snapshots_completed: 7,
            late_records: 1,
            max_sealed: Some(6),
        },
        routing: None,
        sync: Some(SyncCheckpoint {
            pairs_merged: 64,
            duplicates: 3,
            windows_sealed: 7,
            pending: Vec::new(),
        }),
        obs: Some(ObsCheckpoint {
            counters: vec![ObsCounterEntry {
                stage: "align".to_string(),
                name: "stage_records_in_total".to_string(),
                value: 123,
            }],
        }),
    }
}

fn store(tag: u64) -> CheckpointStore {
    let dir = std::env::temp_dir().join(format!("icpe-prop-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointStore::open(dir, 2).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncation_at_any_point_is_a_typed_error(cut_frac in 0usize..100) {
        let store = store(1);
        let path = store.save(1, &sample()).unwrap();
        let full = std::fs::read(&path).unwrap();
        let cut = full.len() * cut_frac / 100;
        std::fs::write(&path, &full[..cut]).unwrap();
        match store.load::<PipelineCheckpoint>(&path) {
            Ok(ckpt) => prop_assert_eq!(ckpt, sample(), "only a complete file may load"),
            Err(
                PersistError::Truncated { .. }
                | PersistError::Corrupt { .. }
                | PersistError::ChecksumMismatch { .. }
                | PersistError::Io(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn single_byte_corruption_never_loads_wrong_data(pos_frac in 0usize..100, flip in 1u8..255) {
        let store = store(2);
        let path = store.save(1, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (bytes.len() - 1) * pos_frac / 100;
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).unwrap();
        // A flip in ignorable whitespace may still load — but then it must
        // load the *right* data; any other outcome is a (typed) error.
        if let Ok(ckpt) = store.load::<PipelineCheckpoint>(&path) {
            prop_assert_eq!(ckpt, sample());
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
