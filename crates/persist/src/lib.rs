//! # icpe-persist — durable checkpoint storage
//!
//! Writes [`PipelineCheckpoint`](icpe_types::PipelineCheckpoint)-shaped
//! state to disk so a crashed or restarted serve instance can resume
//! detection without forgetting its open pattern windows. The store is
//! deliberately boring and auditable:
//!
//! * **File format** — two lines of text: a header
//!   `ICPE-CHECKPOINT v<format> seq=<n> crc32=<hex> len=<bytes>` and the
//!   JSON payload. The header's length and CRC32 are verified before the
//!   payload is parsed, so truncated or bit-flipped files are rejected with
//!   a typed [`PersistError`] instead of a parse panic somewhere deep in
//!   deserialization.
//! * **Atomicity** — each checkpoint is written to `<name>.tmp`, flushed
//!   (`sync_all`), then renamed into place. A crash mid-write leaves at
//!   worst a stale `.tmp`, never a half-written live checkpoint.
//! * **Retention** — the newest `retain` checkpoints are kept; older ones
//!   are deleted after a successful write. [`CheckpointStore::load_latest`]
//!   walks backwards and skips corrupt files, so a torn newest file (power
//!   loss between `write` and `sync`) falls back to the previous good one.
//!
//! The store is generic over any serde-serializable value, so the serve
//! layer can wrap the pipeline checkpoint with its own edge state (the
//! discretizer's stamping map, edge counters) in one atomic file.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// On-disk format version (the container framing, not the payload schema —
/// the payload carries its own `version` field).
pub const FORMAT_VERSION: u32 = 1;

const FILE_PREFIX: &str = "checkpoint-";
const FILE_SUFFIX: &str = ".icpe";

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file is shorter than its header claims (torn write).
    Truncated {
        /// Offending file.
        path: PathBuf,
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The payload bytes do not match the header's checksum.
    ChecksumMismatch {
        /// Offending file.
        path: PathBuf,
    },
    /// The header is missing or malformed, or the payload is not valid
    /// JSON for the requested type.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What went wrong.
        reason: String,
    },
    /// The file was written by an unsupported container format version.
    UnsupportedFormat {
        /// Offending file.
        path: PathBuf,
        /// Version found in the header.
        found: u32,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "checkpoint io error: {e}"),
            PersistError::Truncated {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {} truncated: header promises {expected} payload bytes, found {found}",
                path.display()
            ),
            PersistError::ChecksumMismatch { path } => {
                write!(f, "checkpoint {} failed its CRC32 check", path.display())
            }
            PersistError::Corrupt { path, reason } => {
                write!(f, "checkpoint {} corrupt: {reason}", path.display())
            }
            PersistError::UnsupportedFormat { path, found } => write!(
                f,
                "checkpoint {} uses container format v{found} (supported: v{FORMAT_VERSION})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, the zlib/`cksum -o3` polynomial), table-driven.
/// Implemented locally: the build environment has no registry access, and
/// 30 lines beat another shim crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// An injected write fault, consulted per save via
/// [`CheckpointStore::with_fault_hook`] — the persist half of the chaos
/// harness. `persist` cannot depend on the runtime's `FaultPlan`, so the
/// hook is a plain callback the caller adapts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveFault {
    /// The write fails with an I/O error; nothing reaches disk.
    Fail,
    /// The file lands torn: the payload is truncated mid-way but the file
    /// is still renamed into place, as if the process died during the
    /// write — exercises [`CheckpointStore::load_latest`]'s fallback.
    Torn,
}

/// Callback deciding whether checkpoint `seq`'s write should fault.
pub type SaveFaultHook = std::sync::Arc<dyn Fn(u64) -> Option<SaveFault> + Send + Sync>;

/// A checkpoint `load_latest` walked past because it was unreadable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedCheckpoint {
    /// Sequence number of the skipped file.
    pub seq: u64,
    /// The rendered [`PersistError`] that made it unreadable.
    pub reason: String,
}

/// Result payload of
/// [`load_latest_with_skips`](CheckpointStore::load_latest_with_skips):
/// the newest readable `(seq, value)` (if any) plus the unreadable
/// checkpoints walked past to find it, newest first.
pub type LoadedWithSkips<T> = (Option<(u64, T)>, Vec<SkippedCheckpoint>);

/// A directory of atomic, CRC-protected, retention-bounded checkpoint
/// files.
#[derive(Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
    fault: Option<SaveFaultHook>,
}

impl fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("retain", &self.retain)
            .field("fault", &self.fault.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory keeping the last
    /// `retain` checkpoints (minimum 1).
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> Result<CheckpointStore, PersistError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            retain: retain.max(1),
            fault: None,
        })
    }

    /// Installs a write-fault hook consulted (with the checkpoint seq)
    /// before every [`save`](CheckpointStore::save). Testing/chaos only.
    pub fn with_fault_hook(mut self, hook: SaveFaultHook) -> CheckpointStore {
        self.fault = Some(hook);
        self
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint file for sequence number `seq`.
    pub fn path_for(&self, seq: u64) -> PathBuf {
        self.dir
            .join(format!("{FILE_PREFIX}{seq:020}{FILE_SUFFIX}"))
    }

    /// Atomically writes `value` as checkpoint `seq` and prunes checkpoints
    /// beyond the retention bound. Returns the final path.
    pub fn save<T: Serialize>(&self, seq: u64, value: &T) -> Result<PathBuf, PersistError> {
        let payload = serde_json::to_string(value).map_err(|e| PersistError::Corrupt {
            path: self.path_for(seq),
            reason: format!("serialize: {e}"),
        })?;
        let header = format!(
            "ICPE-CHECKPOINT v{FORMAT_VERSION} seq={seq} crc32={:08x} len={}\n",
            crc32(payload.as_bytes()),
            payload.len()
        );
        let final_path = self.path_for(seq);
        let tmp_path = final_path.with_extension("tmp");
        match self.fault.as_ref().and_then(|hook| hook(seq)) {
            Some(SaveFault::Fail) => {
                return Err(PersistError::Io(std::io::Error::other(
                    "injected checkpoint write fault",
                )));
            }
            Some(SaveFault::Torn) => {
                // Half the payload, renamed into place anyway: the torn
                // newest file a mid-write crash would leave behind.
                let cut = payload.len() / 2;
                fs::write(
                    &tmp_path,
                    [header.as_bytes(), &payload.as_bytes()[..cut]].concat(),
                )?;
                fs::rename(&tmp_path, &final_path)?;
                self.prune()?;
                return Ok(final_path);
            }
            None => {}
        }
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(header.as_bytes())?;
            f.write_all(payload.as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        self.prune()?;
        Ok(final_path)
    }

    /// Reads and verifies one checkpoint file.
    pub fn load<T: for<'de> Deserialize<'de>>(&self, path: &Path) -> Result<T, PersistError> {
        // All slicing happens on raw bytes: the header's `len` is
        // untrusted, and byte-slicing a `&str` at a non-char-boundary
        // would panic instead of reporting corruption.
        let bytes = fs::read(path)?;
        let newline =
            bytes
                .iter()
                .position(|&b| b == b'\n')
                .ok_or_else(|| PersistError::Corrupt {
                    path: path.to_path_buf(),
                    reason: "missing header line".into(),
                })?;
        let header = std::str::from_utf8(&bytes[..newline]).map_err(|_| PersistError::Corrupt {
            path: path.to_path_buf(),
            reason: "header is not UTF-8".into(),
        })?;
        let rest = &bytes[newline + 1..];
        let fields = parse_header(header).ok_or_else(|| PersistError::Corrupt {
            path: path.to_path_buf(),
            reason: format!("malformed header `{header}`"),
        })?;
        if fields.format != FORMAT_VERSION {
            return Err(PersistError::UnsupportedFormat {
                path: path.to_path_buf(),
                found: fields.format,
            });
        }
        if rest.len() < fields.len {
            return Err(PersistError::Truncated {
                path: path.to_path_buf(),
                expected: fields.len,
                found: rest.len(),
            });
        }
        let payload = &rest[..fields.len];
        if crc32(payload) != fields.crc {
            return Err(PersistError::ChecksumMismatch {
                path: path.to_path_buf(),
            });
        }
        let payload = std::str::from_utf8(payload).map_err(|_| PersistError::Corrupt {
            path: path.to_path_buf(),
            reason: "payload is not UTF-8".into(),
        })?;
        serde_json::from_str(payload).map_err(|e| PersistError::Corrupt {
            path: path.to_path_buf(),
            reason: format!("payload: {e}"),
        })
    }

    /// Sequence numbers of the checkpoints on disk, ascending.
    pub fn list(&self) -> Result<Vec<u64>, PersistError> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(stem) = name
                .strip_prefix(FILE_PREFIX)
                .and_then(|s| s.strip_suffix(FILE_SUFFIX))
            {
                if let Ok(seq) = stem.parse::<u64>() {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Loads the newest readable checkpoint, walking backwards past corrupt
    /// or truncated files (a torn newest file must not brick recovery).
    /// Returns `None` when no checkpoint can be read at all. Skipped files
    /// are warned to stderr; use
    /// [`load_latest_with_skips`](CheckpointStore::load_latest_with_skips)
    /// to get them programmatically (for journal events / counters).
    pub fn load_latest<T: for<'de> Deserialize<'de>>(
        &self,
    ) -> Result<Option<(u64, T)>, PersistError> {
        self.load_latest_with_skips().map(|(found, _)| found)
    }

    /// [`load_latest`](CheckpointStore::load_latest), but also reports the
    /// torn/corrupt checkpoints it walked past (newest first) so the caller
    /// can surface them as observability events instead of a silent
    /// fallback.
    pub fn load_latest_with_skips<T: for<'de> Deserialize<'de>>(
        &self,
    ) -> Result<LoadedWithSkips<T>, PersistError> {
        let seqs = self.list()?;
        let mut skips = Vec::new();
        let mut last_err: Option<PersistError> = None;
        for &seq in seqs.iter().rev() {
            match self.load(&self.path_for(seq)) {
                Ok(value) => return Ok((Some((seq, value)), skips)),
                Err(e @ PersistError::Io(_)) => return Err(e),
                Err(e) => {
                    // Corrupt: warn loudly, record the skip, try the
                    // previous one.
                    eprintln!("icpe-persist: skipping unreadable checkpoint seq={seq}: {e}");
                    skips.push(SkippedCheckpoint {
                        seq,
                        reason: e.to_string(),
                    });
                    last_err = Some(e);
                }
            }
        }
        match last_err {
            // Every file on disk is corrupt: surface the failure rather
            // than silently starting fresh over bad state.
            Some(e) => Err(e),
            None => Ok((None, skips)),
        }
    }

    /// Deletes every checkpoint in the store (the stream ended for good;
    /// resuming from any of them would replay already-delivered results).
    pub fn clear(&self) -> Result<(), PersistError> {
        for seq in self.list()? {
            let _ = fs::remove_file(self.path_for(seq));
        }
        Ok(())
    }

    fn prune(&self) -> Result<(), PersistError> {
        let seqs = self.list()?;
        if seqs.len() > self.retain {
            for &seq in &seqs[..seqs.len() - self.retain] {
                let _ = fs::remove_file(self.path_for(seq));
            }
        }
        Ok(())
    }
}

struct Header {
    format: u32,
    crc: u32,
    len: usize,
}

fn parse_header(line: &str) -> Option<Header> {
    let mut parts = line.split_whitespace();
    if parts.next()? != "ICPE-CHECKPOINT" {
        return None;
    }
    let format: u32 = parts.next()?.strip_prefix('v')?.parse().ok()?;
    let mut crc = None;
    let mut len = None;
    for part in parts {
        if let Some(v) = part.strip_prefix("crc32=") {
            crc = u32::from_str_radix(v, 16).ok();
        } else if let Some(v) = part.strip_prefix("len=") {
            len = v.parse::<usize>().ok();
        }
    }
    Some(Header {
        format,
        crc: crc?,
        len: len?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::{AlignerCheckpoint, EngineCheckpoint, PipelineCheckpoint, ProgressCheckpoint};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "icpe-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(seq: u64) -> PipelineCheckpoint {
        PipelineCheckpoint {
            version: icpe_types::CHECKPOINT_VERSION,
            seq,
            records_ingested: 100 + seq,
            aligner: AlignerCheckpoint {
                buffers: Vec::new(),
                chains: Vec::new(),
                sealed_up_to: Some(seq as u32),
                max_seen: seq as u32 + 2,
                late_dropped: 1,
            },
            engine: EngineCheckpoint::empty("FBA"),
            progress: ProgressCheckpoint {
                snapshots_completed: seq,
                late_records: 1,
                max_sealed: Some(seq as u32),
            },
            routing: None,
            sync: None,
            obs: None,
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn save_load_round_trip() {
        let store = CheckpointStore::open(tmp_dir("roundtrip"), 3).unwrap();
        let path = store.save(7, &sample(7)).unwrap();
        assert!(path.to_string_lossy().ends_with(".icpe"));
        let (seq, back): (u64, PipelineCheckpoint) = store.load_latest().unwrap().unwrap();
        assert_eq!(seq, 7);
        assert_eq!(back, sample(7));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn retention_keeps_last_k() {
        let store = CheckpointStore::open(tmp_dir("retain"), 2).unwrap();
        for seq in 1..=5 {
            store.save(seq, &sample(seq)).unwrap();
        }
        assert_eq!(store.list().unwrap(), vec![4, 5]);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncated_file_is_rejected_with_typed_error() {
        let store = CheckpointStore::open(tmp_dir("truncate"), 3).unwrap();
        let path = store.save(1, &sample(1)).unwrap();
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 20]).unwrap();
        match store.load::<PipelineCheckpoint>(&path) {
            Err(PersistError::Truncated {
                expected, found, ..
            }) => {
                assert!(found < expected);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupted_payload_is_rejected_with_typed_error() {
        let store = CheckpointStore::open(tmp_dir("corrupt"), 3).unwrap();
        let path = store.save(1, &sample(1)).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte (past the header line).
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        let idx = header_end + 10;
        bytes[idx] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load::<PipelineCheckpoint>(&path),
            Err(PersistError::ChecksumMismatch { .. })
        ));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn lying_len_on_multibyte_payload_is_an_error_not_a_panic() {
        // `len` is untrusted: pointed mid-way into a multibyte character it
        // must surface as corruption (str slicing would panic instead).
        let store = CheckpointStore::open(tmp_dir("multibyte"), 3).unwrap();
        let path = store.path_for(1);
        let payload = "\"ééé\"";
        let cut = &payload.as_bytes()[..2]; // the quote + half of the first 'é'
        let header = format!(
            "ICPE-CHECKPOINT v{FORMAT_VERSION} seq=1 crc32={:08x} len=2\n",
            crc32(cut)
        );
        fs::write(&path, [header.as_bytes(), payload.as_bytes()].concat()).unwrap();
        match store.load::<String>(&path) {
            Err(PersistError::Corrupt { reason, .. }) => {
                assert!(reason.contains("UTF-8"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn clear_removes_every_checkpoint() {
        let store = CheckpointStore::open(tmp_dir("clear"), 3).unwrap();
        store.save(1, &sample(1)).unwrap();
        store.save(2, &sample(2)).unwrap();
        store.clear().unwrap();
        assert!(store.list().unwrap().is_empty());
        assert!(store.load_latest::<PipelineCheckpoint>().unwrap().is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn garbage_header_is_rejected() {
        let store = CheckpointStore::open(tmp_dir("garbage"), 3).unwrap();
        let path = store.path_for(1);
        fs::write(&path, "not a checkpoint at all\n{}\n").unwrap();
        assert!(matches!(
            store.load::<PipelineCheckpoint>(&path),
            Err(PersistError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_latest_falls_back_past_torn_newest() {
        let store = CheckpointStore::open(tmp_dir("fallback"), 3).unwrap();
        store.save(1, &sample(1)).unwrap();
        let newest = store.save(2, &sample(2)).unwrap();
        let full = fs::read(&newest).unwrap();
        fs::write(&newest, &full[..full.len() / 2]).unwrap();
        let (seq, back): (u64, PipelineCheckpoint) = store.load_latest().unwrap().unwrap();
        assert_eq!(seq, 1, "fell back to the previous good checkpoint");
        assert_eq!(back, sample(1));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_latest_with_skips_reports_the_torn_file() {
        let store = CheckpointStore::open(tmp_dir("skips"), 3).unwrap();
        store.save(1, &sample(1)).unwrap();
        let newest = store.save(2, &sample(2)).unwrap();
        let full = fs::read(&newest).unwrap();
        fs::write(&newest, &full[..full.len() / 2]).unwrap();
        let (found, skips) = store
            .load_latest_with_skips::<PipelineCheckpoint>()
            .unwrap();
        assert_eq!(found.unwrap().0, 1);
        assert_eq!(skips.len(), 1);
        assert_eq!(skips[0].seq, 2);
        assert!(skips[0].reason.contains("truncated"), "{}", skips[0].reason);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn injected_save_fail_writes_nothing() {
        let hook: SaveFaultHook = std::sync::Arc::new(|seq| (seq == 2).then_some(SaveFault::Fail));
        let store = CheckpointStore::open(tmp_dir("savefail"), 3)
            .unwrap()
            .with_fault_hook(hook);
        store.save(1, &sample(1)).unwrap();
        assert!(matches!(
            store.save(2, &sample(2)),
            Err(PersistError::Io(_))
        ));
        assert_eq!(store.list().unwrap(), vec![1], "faulted seq never landed");
        let (seq, _): (u64, PipelineCheckpoint) = store.load_latest().unwrap().unwrap();
        assert_eq!(seq, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn injected_torn_save_lands_and_recovery_falls_back() {
        let hook: SaveFaultHook = std::sync::Arc::new(|seq| (seq == 2).then_some(SaveFault::Torn));
        let store = CheckpointStore::open(tmp_dir("savetorn"), 3)
            .unwrap()
            .with_fault_hook(hook);
        store.save(1, &sample(1)).unwrap();
        store.save(2, &sample(2)).unwrap(); // lands torn, reports success
        assert_eq!(store.list().unwrap(), vec![1, 2]);
        let (found, skips) = store
            .load_latest_with_skips::<PipelineCheckpoint>()
            .unwrap();
        assert_eq!(found.unwrap().0, 1, "torn newest skipped");
        assert_eq!(skips[0].seq, 2);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_latest_on_empty_dir_is_none() {
        let store = CheckpointStore::open(tmp_dir("empty"), 3).unwrap();
        assert!(store.load_latest::<PipelineCheckpoint>().unwrap().is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn all_corrupt_surfaces_error() {
        let store = CheckpointStore::open(tmp_dir("allbad"), 3).unwrap();
        let path = store.save(1, &sample(1)).unwrap();
        fs::write(&path, "garbage\n").unwrap();
        assert!(store.load_latest::<PipelineCheckpoint>().is_err());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unsupported_format_version_is_rejected() {
        let store = CheckpointStore::open(tmp_dir("format"), 3).unwrap();
        let path = store.save(1, &sample(1)).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let bumped = text.replacen("ICPE-CHECKPOINT v1", "ICPE-CHECKPOINT v99", 1);
        fs::write(&path, bumped).unwrap();
        assert!(matches!(
            store.load::<PipelineCheckpoint>(&path),
            Err(PersistError::UnsupportedFormat { found: 99, .. })
        ));
        let _ = fs::remove_dir_all(store.dir());
    }
}
