//! CSV workflow: the adoption path for real datasets.
//!
//! Most trajectory corpora ship as delimited text. This example exports a
//! generated workload to `id,tick,x,y` CSV (stand-in for your own data),
//! reads it back, and runs detection on the imported traces — the exact
//! loop a user with their own GPS logs would follow.
//!
//! ```text
//! cargo run --release --example csv_workflow
//! ```

use icpe::core::{IcpeConfig, IcpeEngine};
use icpe::gen::io::{read_traces, write_traces};
use icpe::gen::{dataset_stats, GroupWalkConfig, GroupWalkGenerator};
use icpe::pattern::PatternSummary;
use icpe::types::Constraints;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pretend this CSV came from your fleet's logging system.
    let generator = GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: 50,
        num_groups: 3,
        group_size: 6,
        num_snapshots: 50,
        seed: 7,
        ..GroupWalkConfig::default()
    });
    let path = std::env::temp_dir().join("icpe_example_trajectories.csv");
    write_traces(&generator.traces(), std::fs::File::create(&path)?)?;
    println!("wrote {}", path.display());

    // 2. Load it back — this is where your own file would enter.
    let traces = read_traces(std::fs::File::open(&path)?)?;
    let stats = dataset_stats(&traces);
    println!(
        "loaded {} trajectories, {} locations, {} snapshots",
        stats.trajectories, stats.locations, stats.snapshots
    );

    // 3. Detect.
    let config = IcpeConfig::builder()
        .constraints(Constraints::new(4, 15, 8, 2)?)
        .epsilon(2.0)
        .min_pts(4)
        .build()?;
    let mut engine = IcpeEngine::new(config);
    let mut patterns = Vec::new();
    for snapshot in traces.to_snapshots() {
        patterns.extend(engine.push_snapshot(snapshot));
    }
    patterns.extend(engine.finish());

    let summary = PatternSummary::from_reports(&patterns);
    print!("{summary}");
    assert!(!summary.maximal.is_empty());
    let _ = std::fs::remove_file(&path);
    Ok(())
}
