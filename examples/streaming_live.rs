//! Live serving end-to-end: producers → TCP server → pipeline → subscriber.
//!
//! Everything the `icpe-serve` layer adds, in one run:
//!
//! 1. an [`icpe_serve::Server`] starts on an ephemeral port, wrapping the
//!    live streaming pipeline;
//! 2. a planted [`GroupWalkGenerator`] workload is pushed through real TCP
//!    by four concurrent load-generator producers (CSV *and* NDJSON wire
//!    formats, with bounded cross-device disorder for the §4 aligner);
//! 3. a subscriber receives every detected co-movement pattern as NDJSON
//!    events while the `STATUS` endpoint reports live counters;
//! 4. the run asserts sustained ingest ≥ 10 000 records/s, snapshots
//!    sealed in order, and every planted group delivered exactly once per
//!    window.
//!
//! ```text
//! cargo run --release --example streaming_live
//! ```

use icpe::core::IcpeConfig;
use icpe::gen::{DisorderConfig, GroupWalkConfig, GroupWalkGenerator};
use icpe::serve::loadgen::{self, LoadConfig};
use icpe::serve::{client, Event, ServeConfig, Server, Subscription, Topic};
use icpe::types::Constraints;
use std::collections::{BTreeSet, HashMap};

fn main() {
    // A planted workload: 120 objects, 4 groups of 6 travelling together
    // for 200 ticks — 24 000 GPS records with known ground truth.
    let generator = GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: 120,
        num_groups: 4,
        group_size: 6,
        num_snapshots: 200,
        seed: 99,
        ..GroupWalkConfig::default()
    });
    let traces = generator.traces();
    let total_records = traces.to_gps_records().len() as u64;

    // CP(M=5, K=8, L=4, G=2) patterns over 1 s ticks.
    let engine = IcpeConfig::builder()
        .constraints(Constraints::new(5, 8, 4, 2).expect("valid constraints"))
        .epsilon(2.5)
        .min_pts(5)
        .parallelism(4)
        .build()
        .expect("valid configuration");
    let mut serve_config = ServeConfig::new(engine);
    // The end-of-stream flush bursts every still-open window's patterns
    // plus the final seal notices at once; size the subscriber queue for
    // that backlog (the shedding policy treats overflow as a slow
    // consumer, and this example asserts lossless delivery).
    serve_config.subscriber_queue = 16 * 1024;
    let server = Server::start(serve_config).expect("server starts");
    let addr = server.local_addr().to_string();
    println!("icpe-serve listening on {addr}");

    // Subscribe before producing: collect every event on a side thread.
    let subscription = Subscription::connect(&addr, Topic::All).expect("subscribe");
    let collector = std::thread::spawn(move || subscription.collect_events().expect("collect"));

    // Four concurrent producers over real TCP; one speaks NDJSON. Bounded
    // displacement scrambles arrival across devices (never within one).
    let run_started = std::time::Instant::now();
    let report = loadgen::run(
        &addr,
        &traces,
        &LoadConfig {
            producers: 4,
            json_fraction: 0.25,
            disorder: Some(DisorderConfig {
                delay_probability: 0.2,
                max_displacement: 64,
                seed: 1,
            }),
            ..LoadConfig::default()
        },
    )
    .expect("load generation");
    println!(
        "pushed {} records over TCP in {:.2?} → {:.0} records/s",
        report.records_sent, report.elapsed, report.records_per_s
    );

    // Live status straight off the wire while the pipeline drains.
    let status = client::fetch_status(&addr).expect("status");
    let get = |key: &str| {
        status
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .unwrap_or("?")
            .to_string()
    };
    println!(
        "status: records_in={} rejected={} frontier={}/{} lag={} subscribers={}",
        get("records_in"),
        get("records_rejected"),
        get("ingest_frontier"),
        get("sealed_frontier"),
        get("detect_lag_snapshots"),
        get("subscribers"),
    );

    let metrics = server.finish();
    // End-to-end rate: producers connecting through the last snapshot
    // sealed — the honest "sustained through TCP" number (the write-side
    // rate above flatters, since kernel buffers absorb bursts instantly).
    let sustained = total_records as f64 / run_started.elapsed().as_secs_f64();
    let events = collector.join().expect("subscriber thread");
    println!("pipeline: {metrics}");
    println!("end-to-end sustained ingest: {sustained:.0} records/s");

    // ---- assertions: the acceptance criteria of the serving layer ------

    assert_eq!(report.records_sent, total_records);
    assert!(
        sustained >= 10_000.0,
        "sustained ingest too slow: {sustained:.0} records/s"
    );
    assert_eq!(metrics.snapshots, 200, "every snapshot sealed");
    assert_eq!(metrics.late_records, 0, "no record was lost to lateness");

    // Snapshots sealed in order, 0..200.
    let sealed: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            Event::Snapshot(s) => Some(s.time),
            Event::Pattern(_) => None,
        })
        .collect();
    assert_eq!(sealed, (0..200).collect::<Vec<_>>(), "sealing order");

    // Every planted group arrives, and no (objects, times) pattern twice.
    let mut seen: HashMap<(Vec<u32>, Vec<u32>), u32> = HashMap::new();
    for event in &events {
        if let Event::Pattern(p) = event {
            *seen
                .entry((p.objects.clone(), p.times.clone()))
                .or_insert(0) += 1;
        }
    }
    assert!(
        seen.values().all(|&n| n == 1),
        "a pattern was delivered more than once"
    );
    let delivered_sets: BTreeSet<&Vec<u32>> = seen.keys().map(|(objs, _)| objs).collect();
    for group in generator.planted_groups() {
        let ids: Vec<u32> = group.iter().map(|o| o.0).collect();
        assert!(
            delivered_sets.contains(&ids),
            "planted group {ids:?} was not delivered"
        );
    }
    println!(
        "{} pattern events, {} distinct windows, all {} planted groups delivered exactly once per window ✓",
        seen.len(),
        sealed.len(),
        generator.planted_groups().len()
    );
}
