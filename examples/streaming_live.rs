//! Live streaming with out-of-order arrival.
//!
//! Demonstrates the §4 time-synchronization machinery end-to-end: the
//! Brinkhoff-style workload is flattened into a record stream, shuffled with
//! bounded displacement (what a real collection tier delivers), and pushed
//! through the distributed pipeline. The "last time" chaining in the aligner
//! restores snapshot order, and the result is identical to the perfectly
//! ordered run.
//!
//! ```text
//! cargo run --release --example streaming_live
//! ```

use icpe::core::{IcpeConfig, IcpePipeline};
use icpe::gen::{disorder_gps, BrinkhoffConfig, BrinkhoffGenerator, DisorderConfig};
use icpe::pattern::unique_object_sets;
use icpe::types::Constraints;

fn main() {
    let generator = BrinkhoffGenerator::new(BrinkhoffConfig {
        num_objects: 120,
        num_ticks: 100,
        seed: 99,
        ..BrinkhoffConfig::default()
    });
    let traces = generator.traces();
    let ordered = traces.to_gps_records();

    // Shuffle: 20% of records delayed by up to 64 stream positions.
    let shuffled = disorder_gps(
        ordered.clone(),
        DisorderConfig {
            delay_probability: 0.2,
            max_displacement: 64,
            seed: 1,
        },
    );
    let displaced = ordered
        .iter()
        .zip(&shuffled)
        .filter(|(a, b)| a != b)
        .count();
    println!(
        "stream: {} records, {} arrived out of order",
        ordered.len(),
        displaced
    );

    let config = IcpeConfig::builder()
        .constraints(Constraints::new(2, 10, 5, 2).expect("valid constraints"))
        .epsilon(1.5)
        .min_pts(2)
        .parallelism(4)
        .build()
        .expect("valid configuration");

    let clean = IcpePipeline::run(&config, ordered);
    let messy = IcpePipeline::run(&config, shuffled);

    println!("\nordered run:   {}", clean.metrics);
    println!("shuffled run:  {}", messy.metrics);

    let clean_sets = unique_object_sets(&clean.patterns);
    let messy_sets = unique_object_sets(&messy.patterns);
    println!(
        "\npatterns: ordered {} sets, shuffled {} sets",
        clean_sets.len(),
        messy_sets.len()
    );
    assert_eq!(
        clean_sets, messy_sets,
        "time alignment must make arrival order irrelevant"
    );
    println!("out-of-order arrival produced identical patterns ✓");
}
