//! Fleet convoys: find taxis that travel together through a road network.
//!
//! Runs the Taxi-shaped workload (hot-spot-biased fleet on a synthetic urban
//! grid, 5 s sampling) through the **distributed streaming pipeline** and
//! reports convoys — the trajectory-compression / fleet-management use case
//! from the paper's introduction — together with the pipeline's latency and
//! throughput, comparing FBA and VBA.
//!
//! ```text
//! cargo run --release --example fleet_convoys
//! ```

use icpe::core::{EnumeratorKind, IcpeConfig, IcpePipeline};
use icpe::gen::{TaxiConfig, TaxiGenerator};
use icpe::pattern::PatternSummary;
use icpe::types::Constraints;

fn main() {
    let generator = TaxiGenerator::new(TaxiConfig {
        num_objects: 150,
        num_ticks: 120,
        seed: 2026,
        ..TaxiConfig::default()
    });
    let traces = generator.traces();
    let records = traces.to_gps_records();
    println!(
        "taxi workload: {} taxis, {} records, {} hotspots",
        traces.num_trajectories(),
        records.len(),
        generator.hotspots().len(),
    );

    // Convoys: ≥ 3 taxis within ε of each other for ≥ 12 ticks (one minute
    // at 5 s sampling), in stretches of ≥ 6 ticks with gaps ≤ 3.
    let constraints = Constraints::new(3, 12, 6, 3).expect("valid constraints");

    for enumerator in [EnumeratorKind::Fba, EnumeratorKind::Vba] {
        let config = IcpeConfig::builder()
            .constraints(constraints)
            .epsilon(3.0)
            .min_pts(3)
            .parallelism(4)
            .enumerator(enumerator)
            .build()
            .expect("valid configuration");

        let out = IcpePipeline::run(&config, records.clone());
        let summary = PatternSummary::from_reports(&out.patterns);
        println!(
            "\n[{}] {} convoy reports, {} distinct fleets, {} maximal | {}",
            enumerator.name(),
            summary.reports,
            summary.distinct_sets,
            summary.maximal.len(),
            out.metrics,
        );
        for p in summary.maximal.iter().take(5) {
            println!("  convoy {p}");
        }
        if summary.maximal.len() > 5 {
            println!("  … and {} more", summary.maximal.len() - 5);
        }
    }
}
