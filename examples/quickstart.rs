//! Quickstart: detect co-movement patterns in a planted workload.
//!
//! Generates 60 objects of which 4 groups of 6 travel together, runs the
//! full ICPE engine (RJC clustering + FBA enumeration), and prints the
//! discovered `CP(M, K, L, G)` patterns against the planted ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use icpe::core::{IcpeConfig, IcpeEngine};
use icpe::gen::{GroupWalkConfig, GroupWalkGenerator};
use icpe::pattern::unique_object_sets;
use icpe::types::Constraints;

fn main() {
    // 1. A workload with known ground truth: 4 groups of 6 objects travel
    //    together for the whole stream; 36 more objects are noise.
    let generator = GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: 60,
        num_groups: 4,
        group_size: 6,
        num_snapshots: 60,
        seed: 42,
        ..GroupWalkConfig::default()
    });
    let snapshots = generator.snapshots();
    println!(
        "workload: {} objects, {} snapshots, {} planted groups",
        60,
        snapshots.len(),
        generator.planted_groups().len()
    );

    // 2. Configure ICPE: groups of ≥ 5 objects, together for ≥ 20 ticks in
    //    segments of ≥ 10, with gaps ≤ 2 — CP(5, 20, 10, 2).
    let config = IcpeConfig::builder()
        .constraints(Constraints::new(5, 20, 10, 2).expect("valid constraints"))
        .epsilon(2.0)
        .min_pts(5)
        .build()
        .expect("valid configuration");

    // 3. Stream the snapshots through the engine.
    let mut engine = IcpeEngine::new(config);
    let mut patterns = Vec::new();
    for snapshot in snapshots {
        patterns.extend(engine.push_snapshot(snapshot));
    }
    patterns.extend(engine.finish());

    // 4. Report.
    let sets = unique_object_sets(&patterns);
    println!(
        "\ndetected {} patterns ({} distinct object sets):",
        patterns.len(),
        sets.len()
    );
    let timings = engine.timings();
    println!(
        "avg clustering {:.3} ms, avg enumeration {:.3} ms per snapshot, avg cluster size {:.1}",
        timings.avg_clustering().as_secs_f64() * 1e3,
        timings.avg_enumeration().as_secs_f64() * 1e3,
        timings.avg_cluster_size(),
    );

    let planted = generator.planted_groups();
    let mut recovered = 0;
    for group in &planted {
        if sets.iter().any(|s| s == group) {
            recovered += 1;
        }
    }
    println!(
        "\nground truth: {recovered}/{} planted groups recovered exactly",
        planted.len()
    );
    for set in sets.iter().take(12) {
        let ids: Vec<String> = set.iter().map(|o| o.to_string()).collect();
        println!("  {{{}}}", ids.join(", "));
    }
    if sets.len() > 12 {
        println!(
            "  … and {} more (subsets of larger groups also qualify)",
            sets.len() - 12
        );
    }
    assert_eq!(
        recovered,
        planted.len(),
        "every planted group must be recovered"
    );
}
