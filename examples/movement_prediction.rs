//! Future-movement prediction — the paper's Figure-1 scenario.
//!
//! Historical co-movement patterns become a prediction model: objects that
//! consistently traveled with a group are predicted to continue to the
//! group's destination. We plant commuting groups with distinct
//! destinations, mine their patterns from the first part of the stream, and
//! then "predict" where a partially observed object is heading by matching
//! it to the pattern it co-moved with.
//!
//! ```text
//! cargo run --release --example movement_prediction
//! ```

use icpe::core::{IcpeConfig, IcpeEngine};
use icpe::gen::{GroupWalkConfig, GroupWalkGenerator};
use icpe::pattern::maximal_patterns;
use icpe::types::{Constraints, ObjectId};

fn main() {
    // Groups commute along their own routes (distinct leaders ⇒ distinct
    // "destinations" in Figure-1 terms).
    let generator = GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: 40,
        num_groups: 3,
        group_size: 6,
        num_snapshots: 80,
        seed: 7,
        ..GroupWalkConfig::default()
    });
    let snapshots = generator.snapshots();
    let (history, live) = snapshots.split_at(60);
    println!(
        "phase 1 — mine history: {} snapshots; phase 2 — live: {} snapshots",
        history.len(),
        live.len()
    );

    // Mine CP(4, 20, 10, 2) patterns from the history.
    let config = IcpeConfig::builder()
        .constraints(Constraints::new(4, 20, 10, 2).expect("valid constraints"))
        .epsilon(2.0)
        .min_pts(4)
        .build()
        .expect("valid configuration");
    let mut engine = IcpeEngine::new(config);
    let mut patterns = Vec::new();
    for s in history {
        patterns.extend(engine.push_snapshot(s.clone()));
    }
    patterns.extend(engine.finish());

    // Keep only the maximal pattern sets as "routes".
    let routes: Vec<Vec<ObjectId>> = maximal_patterns(&patterns)
        .into_iter()
        .map(|p| p.objects)
        .collect();
    println!(
        "\nmined {} pattern reports; {} maximal routes:",
        patterns.len(),
        routes.len()
    );
    for (i, r) in routes.iter().enumerate() {
        let ids: Vec<String> = r.iter().map(|o| o.to_string()).collect();
        println!("  route #{i}: {{{}}}", ids.join(", "));
    }

    // Prediction: a "new" object is observed co-located with some route's
    // members at the start of the live phase. Predict its future position
    // as the route group's centroid at the end of the live phase, and
    // compare with where it actually went.
    let probe = ObjectId(1); // a member of group 0 — pretend it is unknown
    let route = routes
        .iter()
        .find(|r| r.contains(&probe))
        .expect("probe co-moved with a mined route");
    let peers: Vec<ObjectId> = route.iter().copied().filter(|&o| o != probe).collect();

    let last = live.last().expect("live phase non-empty");
    let centroid = {
        let pts: Vec<_> = peers.iter().filter_map(|&o| last.location_of(o)).collect();
        let n = pts.len() as f64;
        (
            pts.iter().map(|p| p.x).sum::<f64>() / n,
            pts.iter().map(|p| p.y).sum::<f64>() / n,
        )
    };
    let actual = last.location_of(probe).expect("probe reports at the end");
    let err = ((centroid.0 - actual.x).powi(2) + (centroid.1 - actual.y).powi(2)).sqrt();
    println!(
        "\nprediction for {probe}: peers' destination ({:.1}, {:.1}); actual ({:.1}, {:.1}); error {:.2}",
        centroid.0, centroid.1, actual.x, actual.y, err
    );
    assert!(
        err < 5.0,
        "prediction should land close to the group (error {err:.2})"
    );
    println!("prediction matched the co-movement group ✓");
}
