//! Bounded multi-producer multi-consumer channels.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Creates a bounded channel with room for `cap` in-flight records.
///
/// Unlike crossbeam, zero-capacity (rendezvous) channels are not supported —
/// nothing in this workspace uses them.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "shim channels require capacity >= 1");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(cap),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A sender/receiver panicking while holding the lock leaves the
        // queue in a consistent state (all mutations are single push/pop
        // operations), so poisoning is ignored.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent record.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// True if the failure was a disconnect (not mere fullness).
    pub fn is_disconnected(&self) -> bool {
        matches!(self, TrySendError::Disconnected(_))
    }

    /// True if the channel was full.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }

    /// Recovers the unsent record.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
        }
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "TrySendError::Full(..)"),
            TrySendError::Disconnected(_) => write!(f, "TrySendError::Disconnected(..)"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is drained and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (senders still connected).
    Empty,
    /// The channel is drained and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with the channel still empty.
    Timeout,
    /// The channel is drained and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on an empty channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty, disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a bounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Sends a record, blocking while the channel is full. Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, record: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(record));
            }
            if inner.queue.len() < self.shared.cap {
                inner.queue.push_back(record);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking send: fails immediately when full or disconnected.
    pub fn try_send(&self, record: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.lock();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(record));
        }
        if inner.queue.len() >= self.shared.cap {
            return Err(TrySendError::Full(record));
        }
        inner.queue.push_back(record);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of records currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True if no records are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sender {{ queued: {} }}", self.len())
    }
}

/// The receiving half of a bounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Receives a record, blocking while the channel is empty. Fails only
    /// when the queue is drained and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(record) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(record);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receives a record, blocking at most `timeout` while the channel is
    /// empty.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.shared.lock();
        loop {
            if let Some(record) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(record);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, left)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.lock();
        if let Some(record) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(record);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// A blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// A non-blocking iterator over the records currently queued.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Number of records currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True if no records are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        drop(inner);
        if last {
            // Wake blocked senders so they observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Receiver {{ queued: {} }}", self.len())
    }
}

/// Blocking iterator over received records (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking iterator over queued records (see [`Receiver::try_iter`]).
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Owning blocking iterator.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn round_trip_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1);
        h.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocked_send_wakes_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(10));
        drop(rx);
        assert!(h.join().unwrap().is_err(), "send must fail, not hang");
    }

    #[test]
    fn recv_drains_queue_after_sender_drop() {
        let (tx, rx) = bounded(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(tx.try_send(2).unwrap_err().is_full());
        drop(rx);
        assert!(tx.try_send(3).unwrap_err().is_disconnected());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_multiset_is_preserved() {
        let (tx, rx) = bounded(16);
        let mut senders = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            senders.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(p * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || rx.iter().collect::<Vec<u64>>()));
        }
        drop(rx);
        for h in senders {
            h.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }
}
