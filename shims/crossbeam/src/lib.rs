//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *exact* API subset it consumes: `crossbeam::channel` bounded MPMC
//! channels with disconnect semantics (see `shims/README.md`). Semantics
//! follow crossbeam-channel:
//!
//! * `send` blocks while the channel is full and fails once every receiver
//!   is gone (returning the record);
//! * `recv` blocks while the channel is empty and fails once every sender
//!   is gone *and* the queue is drained;
//! * clones share one queue (work-stealing consumers, fan-in producers).

pub mod channel;
