//! Offline stand-in for `parking_lot` (see `shims/README.md`).
//!
//! Only the poison-free [`Mutex`] / [`RwLock`] lock API is provided, built
//! on `std::sync`; performance characteristics differ from the real crate
//! but the semantics used by this workspace are identical.

use std::fmt;

/// A mutex whose `lock` never returns a poison error (the real
/// parking_lot has no lock poisoning; here poisoning is swallowed).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with the poison-free parking_lot API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
