//! Offline stand-in for `serde_derive` (see `shims/README.md`).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! shimmed `serde` crate's [`Value`]-based traits, without `syn`/`quote`
//! (which are equally unreachable offline): the item is parsed directly from
//! the `proc_macro` token stream. Supported shapes — everything the
//! workspace derives on:
//!
//! * structs with named fields  → JSON maps in field order;
//! * tuple structs              → newtypes unwrap to the inner value,
//!   wider tuples become sequences;
//! * unit structs               → `null`;
//! * enums with unit variants   → the variant name as a string.
//!
//! Generics, data-carrying enum variants and `#[serde(...)]` attributes are
//! not supported and fail loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated code must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated code must parse")
}

// ---- a tiny item model -----------------------------------------------------

enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(A, B);` — number of fields.
    Tuple(usize),
    /// `struct S;`
    Unit,
    /// `enum E { V1, V2 }` — variant names.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---- token-stream parsing --------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(crate)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected a type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }

    let shape = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::Unit,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_unit_variants(&name, g.stream()))
        }
        _ => panic!("serde shim derive: unsupported item shape for `{name}`"),
    };

    Item { name, shape }
}

/// Extracts field names from the brace contents of a named struct.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility before the field name.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                // Expect `:`, then skip the type up to a depth-0 comma.
                // Generic arguments use `<`/`>` (not token groups), so
                // angle-bracket depth must be tracked explicitly.
                let mut angle_depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("serde shim derive: unexpected token in struct body: {other:?}"),
        }
    }
    fields
}

/// Counts the comma-separated fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx + 1 == tokens.len() {
                        saw_trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = saw_trailing_comma;
    count
}

/// Extracts variant names from a fieldless enum body.
fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(i) {
                    panic!(
                        "serde shim derive: enum `{enum_name}` has a data-carrying \
                         variant `{}`, which is not supported",
                        variants.last().unwrap()
                    );
                }
                // Skip an explicit discriminant (`= expr`) if present.
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '=' {
                        i += 1;
                        while i < tokens.len() {
                            if let TokenTree::Punct(p) = &tokens[i] {
                                if p.as_char() == ',' {
                                    break;
                                }
                            }
                            i += 1;
                        }
                    }
                }
            }
            other => panic!("serde shim derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

// ---- code generation -------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string())"))
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__seq.get({i}).ok_or_else(|| \
                         ::serde::Error::expected(\"{n}-element sequence\", \"{name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let __seq = __v.as_seq().ok_or_else(|| \
                 ::serde::Error::expected(\"sequence\", \"{name}\"))?;\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            format!(
                "match __v.as_str().ok_or_else(|| \
                 ::serde::Error::expected(\"string\", \"{name}\"))? {{\n\
                     {},\n\
                     other => Err(::serde::Error(format!(\
                         \"unknown {name} variant `{{other}}`\"))),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
