//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64) and the rand-0.9-style sampling surface this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`RngExt::random_range`] and
//! [`RngExt::random_bool`]. Statistical quality is appropriate for workload
//! generation and property tests, not cryptography.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers (the rand 0.9 `Rng` surface this workspace
/// uses, under the name it imports).
pub trait RngExt: RngCore {
    /// Samples uniformly from a range (`a..b` half-open or `a..=b`
    /// inclusive, integer or float).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_f64() < p
    }

    /// A uniform draw from `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 high bits → the standard uniform [0,1) construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore> RngExt for R {}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty random_range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                // Guard against rounding onto the excluded endpoint.
                if v >= self.end as f64 { self.start } else { v as $ty }
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty random_range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + u * (hi as f64 - lo as f64)) as $ty
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded by
    /// SplitMix64 expansion of a 64-bit seed. Deterministic across
    /// platforms and runs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1 << 40), b.random_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..1000).all(|_| !rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
