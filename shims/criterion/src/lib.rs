//! Offline stand-in for `criterion` (see `shims/README.md`).
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` and `black_box` — backed by a
//! plain wall-clock sampler: per sample the closure runs in a timed batch,
//! and min/median/mean are reported to stdout. There is no statistical
//! analysis, outlier rejection, or HTML report; numbers are indicative, not
//! criterion-grade.

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
    }

    /// Ends the group (reports are printed eagerly; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter value.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `payload`: a short calibration decides how many calls make
    /// one sample (targeting ~5 ms per sample), then each sample times that
    /// batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        // Calibrate the batch size.
        let t0 = Instant::now();
        black_box(payload());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

        // Warm-up.
        for _ in 0..batch.min(3) {
            black_box(payload());
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(payload());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name:<40} min {} | median {} | mean {} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
