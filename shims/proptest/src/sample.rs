//! Sampling strategies over explicit value sets (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// A strategy that picks uniformly from a fixed list of values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.random_range(0..self.options.len())].clone()
    }
}
