//! The [`Strategy`] trait and the primitive strategies.

use crate::test_runner::TestRng;
use rand::{RngExt, SampleRange};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Re-check that range sampling stays usable for `SampleRange` callers.
#[allow(dead_code)]
fn _assert_sample_range_compat<R: SampleRange<u32>>() {}
