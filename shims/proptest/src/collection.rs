//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// Admissible sizes for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest size, inclusive.
    pub lo: usize,
    /// Largest size, inclusive.
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy generating vectors whose elements come from `element` and
/// whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
