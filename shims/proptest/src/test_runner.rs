//! Test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Number of cases to run per property (real proptest's `ProptestConfig`,
/// reduced to the single knob this workspace uses).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many generated cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the no-shrinking shim's
        // suites fast while still exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator strategies sample from.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator for one named test: seeded from the test's full path so
    /// every test explores a distinct but reproducible stream. Set the
    /// `PROPTEST_SEED` environment variable (decimal or `0x…` hex) to shift
    /// every stream at once.
    pub fn for_test(name: &str) -> Self {
        let mut seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => {
                let s = s.trim().to_owned();
                let parsed = if let Some(hex) = s.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    s.parse::<u64>()
                };
                parsed.unwrap_or_else(|_| panic!("invalid PROPTEST_SEED `{s}`"))
            }
            Err(_) => 0x1C9E_5EED_BA5E_0001,
        };
        // FNV-1a over the test name, mixed into the base seed.
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// A generator from an explicit seed (used to replay one case).
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a fresh per-case seed from this stream.
    pub fn split_seed(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
