//! Offline stand-in for `proptest` (see `shims/README.md`).
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]` header), [`strategy::Strategy`] with
//! `prop_map`, range/tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, `prop::bool::ANY`, and the `prop_assert*`
//! macros.
//!
//! Intentional divergence from real proptest: failures are plain panics with
//! the failing case's seed in the message — there is **no shrinking** and no
//! persisted failure regressions. Each test function's case stream is
//! deterministic (seeded from its module path and name, overridable with
//! the `PROPTEST_SEED` environment variable), so failures reproduce.

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each function body runs once per generated case.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let __case_seed = __rng.split_seed();
                    let mut __case_rng = $crate::test_runner::TestRng::from_seed(__case_seed);
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __case_rng); )*
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let ::std::result::Result::Err(__panic) = __outcome {
                        eprintln!(
                            "proptest shim: case {}/{} of `{}` failed (case seed 0x{:x}; \
                             set PROPTEST_SEED to reproduce the stream)",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __case_seed,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (plain `assert!` here — the
/// shim reports failures by panicking, not by returning `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
