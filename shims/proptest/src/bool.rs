//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// A fair coin.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// The strategy generating `true`/`false` with equal probability.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

/// A biased coin: `true` with probability `p`.
pub fn weighted(p: f64) -> Weighted {
    Weighted { p }
}

/// Strategy returned by [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    p: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.random_bool(self.p)
    }
}
