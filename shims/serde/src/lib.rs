//! Offline stand-in for `serde` (see `shims/README.md`).
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the minimal serialization framework the workspace needs: a
//! self-describing [`Value`] tree, [`Serialize`]/[`Deserialize`] traits over
//! it, and `#[derive(Serialize, Deserialize)]` macros (from the sibling
//! `serde_derive` shim) for plain structs, newtypes and fieldless enums.
//! `serde_json` (also shimmed) renders [`Value`] as JSON.
//!
//! Intentional divergence from real serde: there is no `Serializer` /
//! `Deserializer` visitor machinery — every type round-trips through
//! [`Value`]. The JSON produced for the workspace's types matches what real
//! serde_json would emit (maps for structs, bare values for newtypes,
//! strings for unit enum variants), keeping the wire format stable if the
//! real crates are ever dropped in.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree: the interchange format between typed values
/// and concrete encodings (JSON in this workspace).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (kept exact; JSON numbers without a fraction).
    Int(i128),
    /// A binary float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (struct fields keep declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of a map value (used by derived code).
    pub fn field<'v>(&'v self, name: &str, ty: &str) -> Result<&'v Value, Error> {
        let map = self.as_map().ok_or_else(|| Error::expected("map", ty))?;
        map.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error(format!("missing field `{name}` while reading {ty}")))
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds a "expected X while reading Y" error.
    pub fn expected(what: &str, ty: &str) -> Error {
        Error(format!("expected {what} while reading {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the self-describing [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// Conversion back from the self-describing [`Value`] tree.
///
/// The lifetime parameter exists only so the real-serde bound
/// `for<'de> Deserialize<'de>` keeps compiling; this shim never borrows
/// from the input.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value of `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! int_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$ty>::try_from(*i)
                        .map_err(|_| Error(format!("integer {i} out of range for {}", stringify!($ty)))),
                    _ => Err(Error::expected("integer", stringify!($ty))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $ty),
                    // Integer literals are valid floats ("3" parses as 3.0).
                    Value::Int(i) => Ok(*i as $ty),
                    _ => Err(Error::expected("number", stringify!($ty))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::expected("sequence", "tuple"))?;
                let mut it = seq.iter();
                let out = ($(
                    $name::from_value(
                        it.next().ok_or_else(|| Error::expected("longer sequence", "tuple"))?,
                    )?,
                )+);
                Ok(out)
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
