//! Offline stand-in for `serde_json` (see `shims/README.md`): renders the
//! shimmed [`serde::Value`] tree as JSON text and parses it back.
//!
//! Numbers keep integer/float identity (integers never pass through `f64`),
//! floats use Rust's shortest round-trip formatting, and non-finite floats
//! serialize as `null` (matching real serde_json). `\uXXXX` escapes are
//! decoded including surrogate pairs.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Serializes a value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserializes a typed value out of a [`Value`] tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

// ---- writer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest exact round-trip formatting and
                // always includes a fractional part or exponent.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

/// Parses JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!(
            "expected `{}` at byte {} of JSON input",
            b as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of JSON input".into())),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, kw: &str, v: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {pos}", pos = *pos)))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error("invalid UTF-8 in number".into()))?;
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    } else {
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| Error(format!("invalid integer `{text}`")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut pending_surrogate: Option<u16> = None;
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                if pending_surrogate.is_some() {
                    return Err(Error("unpaired surrogate escape".into()));
                }
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *bytes
                    .get(*pos)
                    .ok_or_else(|| Error("unterminated escape".into()))?;
                *pos += 1;
                let simple = match esc {
                    b'"' => Some('"'),
                    b'\\' => Some('\\'),
                    b'/' => Some('/'),
                    b'n' => Some('\n'),
                    b'r' => Some('\r'),
                    b't' => Some('\t'),
                    b'b' => Some('\u{8}'),
                    b'f' => Some('\u{c}'),
                    b'u' => None,
                    other => return Err(Error(format!("invalid escape `\\{}`", other as char))),
                };
                match simple {
                    Some(c) => {
                        if pending_surrogate.is_some() {
                            return Err(Error("unpaired surrogate escape".into()));
                        }
                        out.push(c);
                    }
                    None => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        *pos += 4;
                        let code = u16::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("invalid \\u escape".into()))?;
                        match (pending_surrogate.take(), code) {
                            (None, 0xD800..=0xDBFF) => pending_surrogate = Some(code),
                            (None, c) => out.push(
                                char::from_u32(c as u32)
                                    .ok_or_else(|| Error("invalid codepoint".into()))?,
                            ),
                            (Some(hi), 0xDC00..=0xDFFF) => {
                                let c = 0x10000
                                    + (((hi as u32) - 0xD800) << 10)
                                    + ((code as u32) - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error("invalid codepoint".into()))?,
                                );
                            }
                            (Some(_), _) => return Err(Error("unpaired surrogate escape".into())),
                        }
                    }
                }
            }
            Some(_) => {
                if pending_surrogate.is_some() {
                    return Err(Error("unpaired surrogate escape".into()));
                }
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let t = (1u32, 2.5f64);
        assert_eq!(from_str::<(u32, f64)>(&to_string(&t).unwrap()).unwrap(), t);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "line\nquote\" backslash\\ unicode ✓".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn float_precision_is_exact() {
        for f in [0.1f64, 1e-300, 123_456_789.123_456_78, f64::MIN_POSITIVE] {
            assert_eq!(from_str::<f64>(&to_string(&f).unwrap()).unwrap(), f);
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<u32>("\"x\"").is_err());
        assert!(from_str::<u32>("-1").is_err());
    }
}
