//! # ICPE — Real-time Co-Movement Pattern Detection on Streaming Trajectories
//!
//! A Rust reproduction of the VLDB 2019 paper *"Real-time Distributed
//! Co-Movement Pattern Detection on Streaming Trajectories"* (Chen, Gao, Fang,
//! Miao, Jensen, Guo — PVLDB 12(10)).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`types`] — the data model: GPS records, snapshots, time sequences and
//!   the `CP(M, K, L, G)` pattern constraints.
//! * [`index`] — the two-layer GR-index (global grid + local R-trees).
//! * [`runtime`] — a minimal pipelined stream-processing runtime standing in
//!   for Apache Flink.
//! * [`cluster`] — GR-index based range join + DBSCAN (RJC) and the SRJ / GDC
//!   comparison baselines.
//! * [`pattern`] — pattern enumeration: Baseline, FBA (fixed-length bit
//!   compression) and VBA (variable-length bit compression).
//! * [`gen`] — trajectory workload generators (Brinkhoff-style network
//!   movement, GeoLife/Taxi-like synthetics, planted co-movement groups).
//! * [`core`] — the assembled ICPE framework with its builder-style API:
//!   the synchronous [`core::IcpeEngine`], the push-based
//!   [`core::StreamingEngine`], and the distributed [`core::IcpePipeline`]
//!   in batch ([`core::IcpePipeline::run`]) or live
//!   ([`core::IcpePipeline::launch`]) form.
//! * [`persist`] — durable checkpoints: atomic, CRC-verified,
//!   retention-bounded files holding the consistent pipeline snapshots
//!   taken by [`core::LivePipeline::checkpoint`], so a crashed or
//!   suspended deployment resumes via [`core::IcpePipeline::launch_from`]
//!   without losing open pattern windows.
//! * [`serve`] — the network edge: a TCP server ingesting newline-delimited
//!   GPS records (CSV `obj_id,time,x,y` or NDJSON) from many concurrent
//!   producers, stamping/validating them into the live pipeline, fanning
//!   detected patterns out to `SUBSCRIBE`d consumers (bounded queues,
//!   slow-consumer shedding), and answering `STATUS` with live counters.
//!   Ingest backpressure is end-to-end (bounded channels all the way to
//!   the socket); delivery never blocks on a slow reader. A `gen`-backed
//!   load generator ([`serve::loadgen`]) soak-tests the system against
//!   itself — see `examples/streaming_live.rs`.
//!
//! ## Quick start
//!
//! ```
//! use icpe::core::{IcpeConfig, IcpeEngine};
//! use icpe::gen::{GroupWalkConfig, GroupWalkGenerator};
//! use icpe::types::Constraints;
//!
//! // A tiny planted workload: 40 objects, some of which travel together.
//! let gen = GroupWalkGenerator::new(GroupWalkConfig {
//!     num_objects: 40,
//!     num_groups: 4,
//!     group_size: 5,
//!     num_snapshots: 30,
//!     seed: 7,
//!     ..GroupWalkConfig::default()
//! });
//! let snapshots = gen.snapshots();
//!
//! // CP(M=4, K=8, L=4, G=2) patterns, DBSCAN closeness.
//! let config = IcpeConfig::builder()
//!     .constraints(Constraints::new(4, 8, 4, 2).unwrap())
//!     .epsilon(2.5)
//!     .min_pts(4)
//!     .build()
//!     .unwrap();
//! let mut engine = IcpeEngine::new(config);
//! let mut patterns = Vec::new();
//! for snap in &snapshots {
//!     patterns.extend(engine.push_snapshot(snap.clone()));
//! }
//! patterns.extend(engine.finish());
//! assert!(!patterns.is_empty());
//! ```
//!
//! See `examples/` for larger end-to-end scenarios and `crates/bench` for the
//! harnesses that regenerate every figure and table of the paper.

pub use icpe_cluster as cluster;
pub use icpe_core as core;
pub use icpe_gen as gen;
pub use icpe_index as index;
pub use icpe_pattern as pattern;
pub use icpe_persist as persist;
pub use icpe_runtime as runtime;
pub use icpe_serve as serve;
pub use icpe_types as types;
