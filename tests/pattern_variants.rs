//! The classic co-movement variants (convoy, swarm, platoon) as instances
//! of the unified `CP(M, K, L, G)` definition, detected end-to-end.

use icpe::core::{IcpeConfig, IcpeEngine};
use icpe::pattern::unique_object_sets;
use icpe::types::{Constraints, ObjectId, Point, Snapshot, Timestamp};

/// Two objects co-located at the given ticks (apart otherwise), plus a
/// lone wanderer.
fn stream(co_ticks: &[u32], horizon: u32) -> Vec<Snapshot> {
    (0..horizon)
        .map(|t| {
            let together = co_ticks.contains(&t);
            let b = if together {
                Point::new(0.4, 0.0)
            } else {
                Point::new(300.0, 300.0)
            };
            Snapshot::from_pairs(
                Timestamp(t),
                [
                    (ObjectId(1), Point::new(0.0, 0.0)),
                    (ObjectId(2), b),
                    (ObjectId(9), Point::new(-300.0, t as f64)),
                ],
            )
        })
        .collect()
}

fn detect(constraints: Constraints, snaps: &[Snapshot]) -> Vec<Vec<ObjectId>> {
    let cfg = IcpeConfig::builder()
        .constraints(constraints)
        .epsilon(1.0)
        .min_pts(2)
        .build()
        .expect("valid config");
    let mut engine = IcpeEngine::new(cfg);
    let mut out = Vec::new();
    for s in snaps {
        out.extend(engine.push_snapshot(s.clone()));
    }
    out.extend(engine.finish());
    unique_object_sets(&out)
}

const PAIR: [u32; 2] = [1, 2];

fn pair() -> Vec<ObjectId> {
    PAIR.map(ObjectId).to_vec()
}

#[test]
fn convoy_requires_unbroken_presence() {
    // Together 5 consecutive ticks → convoy(2, 5) fires.
    let solid = stream(&[3, 4, 5, 6, 7], 15);
    assert!(detect(Constraints::convoy(2, 5).unwrap(), &solid).contains(&pair()));

    // One missing tick breaks it.
    let broken = stream(&[3, 4, 6, 7, 8], 15);
    assert!(!detect(Constraints::convoy(2, 5).unwrap(), &broken).contains(&pair()));
}

#[test]
fn swarm_tolerates_scattered_presence() {
    // Six co-locations scattered with gaps up to 4.
    let scattered = stream(&[0, 4, 7, 11, 13, 17], 22);
    assert!(detect(Constraints::swarm(2, 6, 22).unwrap(), &scattered).contains(&pair()));
    // A convoy of the same duration sees nothing.
    assert!(!detect(Constraints::convoy(2, 6).unwrap(), &scattered).contains(&pair()));
}

#[test]
fn platoon_needs_local_runs() {
    // Two runs of 3 with a gap: platoon(2, 6, 3) fires…
    let runs = stream(&[2, 3, 4, 9, 10, 11], 18);
    assert!(detect(Constraints::platoon(2, 6, 3, 18).unwrap(), &runs).contains(&pair()));
    // …but fragmented singletons only satisfy the swarm.
    let frag = stream(&[1, 3, 5, 7, 9, 11], 18);
    assert!(!detect(Constraints::platoon(2, 6, 3, 18).unwrap(), &frag).contains(&pair()));
    assert!(detect(Constraints::swarm(2, 6, 18).unwrap(), &frag).contains(&pair()));
}

#[test]
fn the_wanderer_never_joins() {
    let snaps = stream(&[0, 1, 2, 3, 4, 5, 6, 7], 12);
    for c in [
        Constraints::convoy(2, 4).unwrap(),
        Constraints::swarm(2, 4, 12).unwrap(),
        Constraints::platoon(2, 4, 2, 12).unwrap(),
    ] {
        let sets = detect(c, &snaps);
        assert!(sets.iter().all(|s| !s.contains(&ObjectId(9))));
    }
}
