//! The two temporal-validity semantics at the system level: the default
//! subsequence mode is complete w.r.t. Definition 4; the paper's greedy mode
//! is a strict subset and diverges exactly where DESIGN.md §6b predicts.

use icpe::core::{EnumeratorKind, IcpeConfig, IcpeEngine};
use icpe::pattern::{unique_object_sets, Semantics};
use icpe::types::{Constraints, ObjectId, Pattern, Point, Snapshot, Timestamp};

/// Two objects co-located at exactly the given ticks, apart otherwise.
fn co_location_stream(co_ticks: &[u32], horizon: u32) -> Vec<Snapshot> {
    (0..horizon)
        .map(|t| {
            let together = co_ticks.contains(&t);
            let b = if together {
                Point::new(0.5, 0.0)
            } else {
                Point::new(500.0, 500.0)
            };
            Snapshot::from_pairs(
                Timestamp(t),
                [(ObjectId(1), Point::new(0.0, 0.0)), (ObjectId(2), b)],
            )
        })
        .collect()
}

fn run(semantics: Semantics, kind: EnumeratorKind, stream: &[Snapshot]) -> Vec<Pattern> {
    let cfg = IcpeConfig::builder()
        .constraints(Constraints::new(2, 4, 2, 4).expect("valid"))
        .epsilon(1.0)
        .min_pts(2)
        .semantics(semantics)
        .enumerator(kind)
        .build()
        .expect("valid config");
    let mut engine = IcpeEngine::new(cfg);
    let mut out = Vec::new();
    for s in stream {
        out.extend(engine.push_snapshot(s.clone()));
    }
    out.extend(engine.finish());
    out
}

#[test]
fn divergence_case_doomed_middle_segment() {
    // Co-cluster times {1,2,4,6,7} under CP(2,4,2,4): the valid subsequence
    // {1,2,6,7} exists (Definition 4 satisfied), but the paper's greedy
    // verification dies on the doomed singleton run {4} from every start.
    let stream = co_location_stream(&[1, 2, 4, 6, 7], 14);
    let pair = vec![ObjectId(1), ObjectId(2)];

    for kind in [
        EnumeratorKind::Baseline,
        EnumeratorKind::Fba,
        EnumeratorKind::Vba,
    ] {
        let sub = unique_object_sets(&run(Semantics::Subsequence, kind, &stream));
        assert!(
            sub.contains(&pair),
            "{kind:?} subsequence missed the pattern"
        );
        let greedy = unique_object_sets(&run(Semantics::PaperGreedy, kind, &stream));
        assert!(
            !greedy.contains(&pair),
            "{kind:?} greedy unexpectedly found the pattern"
        );
    }
}

#[test]
fn greedy_and_subsequence_agree_on_clean_sequences() {
    // A single long run: both semantics find the pair.
    let stream = co_location_stream(&[3, 4, 5, 6, 7], 14);
    let pair = vec![ObjectId(1), ObjectId(2)];
    for sem in [Semantics::Subsequence, Semantics::PaperGreedy] {
        for kind in [
            EnumeratorKind::Baseline,
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
        ] {
            let sets = unique_object_sets(&run(sem, kind, &stream));
            assert!(sets.contains(&pair), "{kind:?}/{sem:?}");
        }
    }
}

#[test]
fn greedy_reports_are_a_subset_of_subsequence_reports() {
    // On a messier stream, every greedy-reported set must also be reported
    // under subsequence semantics (greedy is strictly stricter).
    let stream = co_location_stream(&[0, 1, 3, 5, 6, 9, 10, 11, 13], 20);
    for kind in [
        EnumeratorKind::Baseline,
        EnumeratorKind::Fba,
        EnumeratorKind::Vba,
    ] {
        let sub = unique_object_sets(&run(Semantics::Subsequence, kind, &stream));
        let greedy = unique_object_sets(&run(Semantics::PaperGreedy, kind, &stream));
        for s in &greedy {
            assert!(sub.contains(s), "{kind:?}: greedy-only set {s:?}");
        }
    }
}
