//! Cross-crate integration: generators → clustering → enumeration, in both
//! deployment forms, validated against the exhaustive oracle.

use icpe::core::{EnumeratorKind, IcpeConfig, IcpeEngine, IcpePipeline};
use icpe::gen::{GroupWalkConfig, GroupWalkGenerator};
use icpe::pattern::reference::ExhaustiveMiner;
use icpe::pattern::{unique_object_sets, Semantics};
use icpe::types::{Constraints, ObjectId, Pattern, Snapshot};

fn workload(gap_len: u32, seed: u64) -> (GroupWalkGenerator, Vec<Snapshot>) {
    let gen = GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: 36,
        num_groups: 3,
        group_size: 5,
        num_snapshots: 50,
        active_len: 12,
        gap_len,
        cohesion_radius: 0.6,
        dispersal_radius: 40.0,
        seed,
        ..GroupWalkConfig::default()
    });
    let snaps = gen.snapshots();
    (gen, snaps)
}

fn config(kind: EnumeratorKind) -> IcpeConfig {
    IcpeConfig::builder()
        .constraints(Constraints::new(4, 15, 6, 4).expect("valid"))
        .epsilon(1.8)
        .min_pts(4)
        .parallelism(3)
        .enumerator(kind)
        .build()
        .expect("valid config")
}

fn run_sync(cfg: &IcpeConfig, snaps: &[Snapshot]) -> Vec<Pattern> {
    let mut engine = IcpeEngine::new(cfg.clone());
    let mut out = Vec::new();
    for s in snaps {
        out.extend(engine.push_snapshot(s.clone()));
    }
    out.extend(engine.finish());
    out
}

#[test]
fn planted_groups_are_recovered_by_every_engine() {
    let (gen, snaps) = workload(0, 21);
    for kind in [
        EnumeratorKind::Baseline,
        EnumeratorKind::Fba,
        EnumeratorKind::Vba,
    ] {
        let sets = unique_object_sets(&run_sync(&config(kind), &snaps));
        for group in gen.planted_groups() {
            assert!(
                sets.contains(&group),
                "{kind:?} missed planted group {group:?}"
            );
        }
    }
}

#[test]
fn episodic_groups_respect_temporal_constraints() {
    // With on/off episodes (12 on, 5 off > G=4), patterns must not span the
    // dispersal gaps.
    let gen = GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: 24,
        num_groups: 2,
        group_size: 5,
        num_snapshots: 60,
        active_len: 12,
        gap_len: 5,
        cohesion_radius: 0.6,
        dispersal_radius: 50.0,
        seed: 33,
        ..GroupWalkConfig::default()
    });
    let snaps = gen.snapshots();
    // K = 10 fits inside one 12-tick episode; the 5-tick dispersal gap
    // exceeds G = 4, so no sequence may bridge episodes.
    let cfg = IcpeConfig::builder()
        .constraints(Constraints::new(4, 10, 6, 4).expect("valid"))
        .epsilon(1.8)
        .min_pts(4)
        .build()
        .expect("valid config");
    let patterns = run_sync(&cfg, &snaps);
    assert!(!patterns.is_empty());
    for p in &patterns {
        assert!(p.satisfies(&cfg.constraints), "{p}");
        // Witness must lie within a single active episode (period 17).
        let first = p.times.min().unwrap().0;
        let last = p.times.max().unwrap().0;
        assert_eq!(first / 17, last / 17, "pattern bridges episodes: {p}");
    }
}

#[test]
fn all_engines_match_the_oracle_on_the_cluster_stream() {
    let (_, snaps) = workload(3, 55);
    // Cluster once with RJC, mine with all engines + oracle.
    let clusterer = icpe::cluster::RjcClusterer::new(
        14.4,
        icpe::types::DbscanParams::new(1.8, 4).expect("valid"),
        icpe::types::DistanceMetric::Chebyshev,
    );
    use icpe::cluster::SnapshotClusterer;
    let stream: Vec<_> = snaps.iter().map(|s| clusterer.cluster(s)).collect();

    let constraints = Constraints::new(4, 15, 6, 4).expect("valid");
    let mut miner = ExhaustiveMiner::new();
    for cs in &stream {
        miner.push(cs.clone());
    }
    let oracle = miner.mine_object_sets(&constraints, Semantics::Subsequence);

    use icpe::pattern::{BaselineEngine, EngineConfig, FbaEngine, PatternEngine, VbaEngine};
    let ec = EngineConfig::new(constraints);
    let engines: Vec<Box<dyn PatternEngine>> = vec![
        Box::new(BaselineEngine::new(ec)),
        Box::new(FbaEngine::new(ec)),
        Box::new(VbaEngine::new(ec)),
    ];
    for mut engine in engines {
        let mut out = Vec::new();
        for cs in &stream {
            out.extend(engine.push(cs));
        }
        out.extend(engine.finish());
        assert_eq!(
            unique_object_sets(&out),
            oracle,
            "{} disagrees with oracle",
            engine.name()
        );
    }
}

#[test]
fn pipeline_equals_sync_engine_on_generated_workloads() {
    let (_, snaps) = workload(3, 77);
    let cfg = config(EnumeratorKind::Fba);
    let sync_sets = unique_object_sets(&run_sync(&cfg, &snaps));

    // Convert snapshots back into a record stream for the pipeline.
    let mut records = Vec::new();
    for s in &snaps {
        for e in &s.entries {
            records.push(icpe::types::GpsRecord::new(
                e.id,
                e.location,
                s.time,
                e.last_time,
            ));
        }
    }
    let out = IcpePipeline::run(&cfg, records);
    assert_eq!(unique_object_sets(&out.patterns), sync_sets);
    assert_eq!(out.metrics.snapshots, snaps.len());
}

#[test]
fn noise_objects_never_form_patterns() {
    // All noise (zero groups): no pattern should survive CP(4, 15, 6, 4).
    let gen = GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: 30,
        num_groups: 0,
        group_size: 1,
        num_snapshots: 40,
        area: 400.0, // sparse
        seed: 91,
        ..GroupWalkConfig::default()
    });
    let patterns = run_sync(&config(EnumeratorKind::Fba), &gen.snapshots());
    let sets = unique_object_sets(&patterns);
    // With a sparse arena random walkers may briefly cluster, but holding
    // together for K=15 of 40 ticks is (deterministically, for this seed)
    // impossible.
    assert!(sets.is_empty(), "phantom patterns: {sets:?}");
}

#[test]
fn subsets_of_discovered_groups_also_qualify() {
    let (gen, snaps) = workload(0, 101);
    let sets = unique_object_sets(&run_sync(&config(EnumeratorKind::Fba), &snaps));
    // For each planted 5-group, each of its 5 4-subsets must also appear
    // (M = 4): Definition 4 is monotone downward on the object set.
    for group in gen.planted_groups() {
        for skip in 0..group.len() {
            let subset: Vec<ObjectId> = group
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, &o)| o)
                .collect();
            assert!(sets.contains(&subset), "missing subset {subset:?}");
        }
    }
}
