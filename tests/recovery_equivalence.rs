//! Crash-recovery equivalence: the headline proof of the checkpoint layer.
//!
//! For a planted-pattern stream, a run that is killed at an arbitrary
//! record and restored from its checkpoint must seal **exactly** the same
//! patterns as an uninterrupted run — as a multiset, each exactly once:
//! the pre-crash deliveries up to the checkpoint plus the resumed run's
//! deliveries partition the continuous run's output.
//!
//! Cut points exercised: a snapshot/window boundary, mid-window, the very
//! start, near the end, and — via a disordered stream — a cut landing
//! while late records are still within their grace (the aligner holds
//! buffered, unsealed snapshots that must survive the restore).

use icpe::core::{EnumeratorKind, IcpeConfig, IcpePipeline, PipelineEvent};
use icpe::gen::{GroupWalkConfig, GroupWalkGenerator};
use icpe::persist::CheckpointStore;
use icpe::runtime::AlignerConfig;
use icpe::types::{GpsRecord, Pattern};
use std::sync::{Arc, Mutex};

const NUM_OBJECTS: usize = 30; // records per tick (every object reports)
const NUM_TICKS: u32 = 30;

fn generator() -> GroupWalkGenerator {
    GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: NUM_OBJECTS,
        num_groups: 3,
        group_size: 5,
        num_snapshots: NUM_TICKS,
        seed: 7,
        ..GroupWalkConfig::default()
    })
}

fn records() -> Vec<GpsRecord> {
    generator().traces().to_gps_records()
}

fn config(kind: EnumeratorKind) -> IcpeConfig {
    IcpeConfig::builder()
        .constraints(icpe::types::Constraints::new(4, 8, 4, 2).unwrap())
        .epsilon(2.5)
        .min_pts(4)
        .parallelism(3)
        .enumerator(kind)
        .aligner(AlignerConfig {
            max_lag: 64,
            emit_empty: true,
            lateness: 4,
        })
        .build()
        .unwrap()
}

/// The exactly-once identity of a delivered pattern.
fn key(p: &Pattern) -> (Vec<u32>, Vec<u32>) {
    (
        p.objects.iter().map(|o| o.0).collect(),
        p.times.times().iter().map(|t| t.0).collect(),
    )
}

fn sorted_keys(patterns: &[Pattern]) -> Vec<(Vec<u32>, Vec<u32>)> {
    let mut keys: Vec<_> = patterns.iter().map(key).collect();
    keys.sort();
    keys
}

fn run_continuous(cfg: &IcpeConfig, records: &[GpsRecord]) -> Vec<(Vec<u32>, Vec<u32>)> {
    let out = IcpePipeline::run(cfg, records.to_vec());
    sorted_keys(&out.patterns)
}

/// Runs the stream with a kill at `cut` + checkpoint-restore, returning the
/// union of pre-crash deliveries (up to the checkpoint) and the resumed
/// run's deliveries.
fn run_with_crash(
    cfg: &IcpeConfig,
    records: &[GpsRecord],
    cut: usize,
) -> Vec<(Vec<u32>, Vec<u32>)> {
    let pre: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&pre);
    let live = IcpePipeline::launch(cfg, move |e| {
        if let PipelineEvent::Pattern(p) = e {
            sink.lock().unwrap().push(p);
        }
    });
    for r in &records[..cut] {
        live.push(*r).unwrap();
    }
    let ckpt = live.checkpoint().unwrap();
    assert_eq!(
        ckpt.records_ingested as usize, cut,
        "the barrier names the exact cut"
    );
    // Everything delivered by the time checkpoint() returns is pre-cut;
    // snapshot it, then crash without finishing (flush events discarded —
    // a real crash would never have emitted them).
    let delivered = pre.lock().unwrap().clone();
    drop(live);

    let post: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&post);
    let resumed = IcpePipeline::launch_from(cfg, &ckpt, move |e| {
        if let PipelineEvent::Pattern(p) = e {
            sink.lock().unwrap().push(p);
        }
    })
    .expect("checkpoint restores");
    for r in &records[cut..] {
        resumed.push(*r).unwrap();
    }
    let report = resumed.finish();
    assert_eq!(
        report.snapshots, NUM_TICKS as usize,
        "restored progress gauges stay cumulative across the crash"
    );

    let mut all = delivered;
    all.extend(post.lock().unwrap().clone());
    sorted_keys(&all)
}

/// Cut points per the issue: window boundary, mid-window, degenerate edges.
fn cut_points(total: usize) -> Vec<usize> {
    vec![
        NUM_OBJECTS * 10,      // exactly at a snapshot/window boundary
        NUM_OBJECTS * 14 + 13, // mid-window, mid-tick
        1,                     // before anything could seal
        total - 7,             // near the end, engines full of open windows
    ]
}

fn assert_equivalence(kind: EnumeratorKind) {
    let records = records();
    let cfg = config(kind);
    let want = run_continuous(&cfg, &records);
    assert!(!want.is_empty(), "workload must plant detectable groups");

    // Ground truth contains the planted groups.
    let object_sets: std::collections::BTreeSet<Vec<u32>> =
        want.iter().map(|(objs, _)| objs.clone()).collect();
    for group in generator().planted_groups() {
        let ids: Vec<u32> = group.iter().map(|o| o.0).collect();
        assert!(
            object_sets.contains(&ids),
            "planted group {ids:?} missing from the reference run"
        );
    }

    for cut in cut_points(records.len()) {
        let got = run_with_crash(&cfg, &records, cut);
        assert_eq!(
            got, want,
            "{kind:?}: kill at record {cut} changed the sealed pattern multiset"
        );
    }
}

#[test]
fn fba_recovery_is_equivalent_at_every_cut_point() {
    assert_equivalence(EnumeratorKind::Fba);
}

#[test]
fn vba_recovery_is_equivalent_at_every_cut_point() {
    assert_equivalence(EnumeratorKind::Vba);
}

#[test]
fn baseline_recovery_is_equivalent_at_every_cut_point() {
    assert_equivalence(EnumeratorKind::Baseline);
}

#[test]
fn recovery_during_late_record_grace_is_equivalent() {
    // Disorder the stream within the aligner's lateness allowance (swap
    // whole-tick displacements, preserving per-object order), then cut
    // mid-grace: the checkpoint must carry buffered unsealed snapshots and
    // half-connected chains.
    let mut records = records();
    let n = records.len();
    for i in (0..n.saturating_sub(NUM_OBJECTS)).step_by(2 * NUM_OBJECTS) {
        records.swap(i, i + NUM_OBJECTS);
    }
    let cfg = config(EnumeratorKind::Fba);
    let want = run_continuous(&cfg, &records);
    assert!(!want.is_empty());
    for cut in [NUM_OBJECTS * 12 + 5, NUM_OBJECTS * 20 + 1] {
        let got = run_with_crash(&cfg, &records, cut);
        assert_eq!(got, want, "disordered kill at {cut} diverged");
    }
}

#[test]
fn recovery_through_the_on_disk_store_is_equivalent() {
    // Same harness, but the checkpoint takes the full disk round trip:
    // atomic write, CRC verification, reload — proving the persisted form
    // (not just the in-memory one) carries the whole state.
    let records = records();
    let cfg = config(EnumeratorKind::Fba);
    let want = run_continuous(&cfg, &records);

    let dir = std::env::temp_dir().join(format!("icpe-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir, 2).unwrap();

    let pre: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&pre);
    let live = IcpePipeline::launch(&cfg, move |e| {
        if let PipelineEvent::Pattern(p) = e {
            sink.lock().unwrap().push(p);
        }
    });
    let cut = NUM_OBJECTS * 17 + 11;
    for r in &records[..cut] {
        live.push(*r).unwrap();
    }
    let ckpt = live.checkpoint().unwrap();
    store.save(ckpt.seq, &ckpt).unwrap();
    let delivered = pre.lock().unwrap().clone();
    drop(live);

    let (seq, loaded): (u64, icpe::types::PipelineCheckpoint) =
        store.load_latest().unwrap().expect("checkpoint on disk");
    assert_eq!(seq, ckpt.seq);
    assert_eq!(loaded, ckpt, "disk round trip is lossless");

    let post: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&post);
    let resumed = IcpePipeline::launch_from(&cfg, &loaded, move |e| {
        if let PipelineEvent::Pattern(p) = e {
            sink.lock().unwrap().push(p);
        }
    })
    .unwrap();
    for r in &records[cut..] {
        resumed.push(*r).unwrap();
    }
    resumed.finish();

    let mut all = delivered;
    all.extend(post.lock().unwrap().clone());
    assert_eq!(sorted_keys(&all), want);
    let _ = std::fs::remove_dir_all(&dir);
}
