//! The paper's running examples, reconstructed geometrically and run
//! through the full system (not just the enumeration layer).

use icpe::core::{EnumeratorKind, IcpeConfig, IcpeEngine};
use icpe::pattern::unique_object_sets;
use icpe::types::{Constraints, ObjectId, Pattern, Point, Snapshot, Timestamp};

/// Builds the Figure-2 trajectories as geometry: eight objects over eight
/// ticks whose DBSCAN clusters (ε = 1, minPts = 2, Chebyshev) reproduce the
/// figure's grouping. Positions: co-clustered objects are placed within ε
/// chains; others far apart.
fn fig2_snapshots() -> Vec<Snapshot> {
    // Per tick: list of groups; objects in the same group are placed close.
    let groups_per_tick: Vec<Vec<Vec<u32>>> = vec![
        vec![vec![1, 2], vec![3, 4], vec![5, 6, 7], vec![8]],
        vec![vec![1, 2], vec![3, 4, 5], vec![6, 7], vec![8]],
        vec![vec![2, 3, 4, 5, 6, 7, 8], vec![1]],
        vec![vec![1, 2], vec![3, 4, 5, 6, 7], vec![8]],
        vec![vec![1, 2], vec![4, 5], vec![6, 7], vec![3], vec![8]],
        vec![vec![3, 4, 5, 6], vec![7, 8], vec![1], vec![2]],
        vec![vec![1, 2], vec![4, 5, 6, 7], vec![3], vec![8]],
        vec![vec![5, 6, 7, 8], vec![1], vec![2], vec![3], vec![4]],
    ];
    groups_per_tick
        .into_iter()
        .enumerate()
        .map(|(t, groups)| {
            let mut entries = Vec::new();
            for (gi, group) in groups.iter().enumerate() {
                // Groups spaced 100 apart; members chained 0.8 apart (≤ ε).
                let gx = gi as f64 * 100.0;
                for (mi, &id) in group.iter().enumerate() {
                    entries.push((ObjectId(id), Point::new(gx + mi as f64 * 0.8, 0.0)));
                }
            }
            Snapshot::from_pairs(Timestamp(t as u32 + 1), entries)
        })
        .collect()
}

fn run(constraints: Constraints, kind: EnumeratorKind) -> Vec<Pattern> {
    let cfg = IcpeConfig::builder()
        .constraints(constraints)
        .epsilon(1.0)
        .min_pts(2)
        .enumerator(kind)
        .build()
        .expect("valid config");
    let mut engine = IcpeEngine::new(cfg);
    let mut out = Vec::new();
    for s in fig2_snapshots() {
        out.extend(engine.push_snapshot(s));
    }
    out.extend(engine.finish());
    out
}

#[test]
fn fig2_cp_2_4_2_2_finds_o4o5_and_o6o7() {
    // §3.1: "if the current time is 5, {o4,o5} and {o6,o7} are CP(2,4,2,2)
    // patterns where T = ⟨2,3,4,5⟩".
    for kind in [
        EnumeratorKind::Baseline,
        EnumeratorKind::Fba,
        EnumeratorKind::Vba,
    ] {
        let sets = unique_object_sets(&run(Constraints::new(2, 4, 2, 2).expect("valid"), kind));
        assert!(
            sets.contains(&vec![ObjectId(4), ObjectId(5)]),
            "{kind:?}: {sets:?}"
        );
        assert!(
            sets.contains(&vec![ObjectId(6), ObjectId(7)]),
            "{kind:?}: {sets:?}"
        );
    }
}

#[test]
fn fig2_cp_3_4_2_2_finds_o4o5o6_with_the_papers_witness() {
    // §3.1: "no CP(3,4,2,2) pattern exists until time 7, where {o4,o5,o6}
    // qualifies with T = ⟨3,4,6,7⟩".
    let patterns = run(
        Constraints::new(3, 4, 2, 2).expect("valid"),
        EnumeratorKind::Fba,
    );
    let target: Vec<ObjectId> = vec![ObjectId(4), ObjectId(5), ObjectId(6)];
    let found: Vec<&Pattern> = patterns.iter().filter(|p| p.objects == target).collect();
    assert!(!found.is_empty(), "{patterns:?}");
    // At least one report carries exactly the paper's witness sequence.
    let witness: Vec<u32> = vec![3, 4, 6, 7];
    assert!(
        found
            .iter()
            .any(|p| { p.times.times().iter().map(|t| t.0).collect::<Vec<_>>() == witness }),
        "no report with T = ⟨3,4,6,7⟩: {found:?}"
    );
    // And nothing qualifies strictly before time 7.
    for p in &patterns {
        if p.objects.len() >= 3 {
            assert!(p.times.max().unwrap().0 >= 7, "{p}");
        }
    }
}

#[test]
fn fig2_time3_dbscan_cluster_matches_the_paper() {
    // §3.2: at time 3 (ε as in the figure, minPts = 3), o3…o7 are cores,
    // o2 and o8 density-reachable: one cluster {o2,…,o8}.
    use icpe::cluster::{RjcClusterer, SnapshotClusterer};
    let snaps = fig2_snapshots();
    let clusterer = RjcClusterer::new(
        8.0,
        icpe::types::DbscanParams::new(1.0, 3).expect("valid"),
        icpe::types::DistanceMetric::Chebyshev,
    );
    let cs = clusterer.cluster(&snaps[2]); // time 3
    assert_eq!(cs.clusters.len(), 1);
    assert_eq!(
        cs.clusters[0].members(),
        (2..=8).map(ObjectId).collect::<Vec<_>>().as_slice()
    );
}

#[test]
fn fig1_prediction_patterns() {
    // Figure 1: P1 = {o1,o2}, P2 = {o3,o5}, P3 = {o4,o6} travel together
    // along different routes; o7 is independent. Reconstruct with three
    // parallel corridors.
    let mut snaps = Vec::new();
    for t in 0..10u32 {
        let x = t as f64 * 2.0;
        snaps.push(Snapshot::from_pairs(
            Timestamp(t),
            [
                (ObjectId(1), Point::new(x, 0.0)),
                (ObjectId(2), Point::new(x + 0.4, 0.2)),
                (ObjectId(3), Point::new(x, 50.0)),
                (ObjectId(5), Point::new(x + 0.4, 50.2)),
                (ObjectId(4), Point::new(x, 100.0)),
                (ObjectId(6), Point::new(x + 0.4, 100.2)),
                (ObjectId(7), Point::new(-x, 150.0)),
            ],
        ));
    }
    let cfg = IcpeConfig::builder()
        .constraints(Constraints::new(2, 6, 3, 2).expect("valid"))
        .epsilon(1.0)
        .min_pts(2)
        .build()
        .expect("valid config");
    let mut engine = IcpeEngine::new(cfg);
    let mut patterns = Vec::new();
    for s in snaps {
        patterns.extend(engine.push_snapshot(s));
    }
    patterns.extend(engine.finish());
    let sets = unique_object_sets(&patterns);
    assert_eq!(
        sets,
        vec![
            vec![ObjectId(1), ObjectId(2)],
            vec![ObjectId(3), ObjectId(5)],
            vec![ObjectId(4), ObjectId(6)],
        ]
    );
}
