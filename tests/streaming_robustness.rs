//! Failure injection and robustness of the streaming deployment: disorder,
//! skew, degenerate parameters, empty input.

use icpe::core::{EnumeratorKind, IcpeConfig, IcpePipeline};
use icpe::gen::{
    disorder_gps, BrinkhoffConfig, BrinkhoffGenerator, DisorderConfig, GroupWalkConfig,
    GroupWalkGenerator,
};
use icpe::pattern::unique_object_sets;
use icpe::types::{Constraints, GpsRecord, ObjectId, Point, Timestamp};

fn base_config() -> IcpeConfig {
    IcpeConfig::builder()
        .constraints(Constraints::new(2, 8, 4, 2).expect("valid"))
        .epsilon(1.5)
        .min_pts(2)
        .parallelism(4)
        .build()
        .expect("valid config")
}

#[test]
fn disorder_injection_does_not_change_results() {
    let gen = BrinkhoffGenerator::new(BrinkhoffConfig {
        num_objects: 60,
        num_ticks: 60,
        seed: 5,
        ..BrinkhoffConfig::default()
    });
    let ordered = gen.traces().to_gps_records();
    let clean = unique_object_sets(&IcpePipeline::run(&base_config(), ordered.clone()).patterns);

    for (prob, disp, seed) in [(0.1, 16, 1u64), (0.3, 48, 2), (0.5, 60, 3)] {
        let shuffled = disorder_gps(
            ordered.clone(),
            DisorderConfig {
                delay_probability: prob,
                max_displacement: disp,
                seed,
            },
        );
        let messy = unique_object_sets(&IcpePipeline::run(&base_config(), shuffled).patterns);
        assert_eq!(
            messy, clean,
            "disorder p={prob} disp={disp} changed results"
        );
    }
}

#[test]
fn heavily_skewed_keys_still_complete() {
    // Every object in one grid cell: a single GridQuery subtask receives
    // all the work; the pipeline must still finish and find the group.
    let mut records = Vec::new();
    for t in 0..20u32 {
        let last = (t > 0).then(|| Timestamp(t - 1));
        for i in 0..12u32 {
            records.push(GpsRecord::new(
                ObjectId(i),
                Point::new(0.2 + (i as f64) * 0.05, 0.3),
                Timestamp(t),
                last,
            ));
        }
    }
    let out = IcpePipeline::run(&base_config(), records);
    let sets = unique_object_sets(&out.patterns);
    assert!(!sets.is_empty());
    assert_eq!(out.metrics.snapshots, 20);
}

#[test]
fn degenerate_constraints_run() {
    // The smallest legal constraint set: CP(2, 1, 1, 1).
    let cfg = IcpeConfig::builder()
        .constraints(Constraints::new(2, 1, 1, 1).expect("valid"))
        .epsilon(1.0)
        .min_pts(2)
        .parallelism(2)
        .build()
        .expect("valid config");
    let mut records = Vec::new();
    for t in 0..5u32 {
        let last = (t > 0).then(|| Timestamp(t - 1));
        records.push(GpsRecord::new(
            ObjectId(1),
            Point::new(0.0, 0.0),
            Timestamp(t),
            last,
        ));
        records.push(GpsRecord::new(
            ObjectId(2),
            Point::new(0.5, 0.5),
            Timestamp(t),
            last,
        ));
    }
    let out = IcpePipeline::run(&cfg, records);
    let sets = unique_object_sets(&out.patterns);
    assert_eq!(sets, vec![vec![ObjectId(1), ObjectId(2)]]);
}

#[test]
fn objects_appearing_and_disappearing_mid_stream() {
    let mut records = Vec::new();
    // Object 1 reports the whole stream; object 2 joins at t=10 and leaves
    // at t=25; both co-located throughout 10..=25.
    for t in 0..40u32 {
        let last1 = (t > 0).then(|| Timestamp(t - 1));
        records.push(GpsRecord::new(
            ObjectId(1),
            Point::new(1.0, 1.0),
            Timestamp(t),
            last1,
        ));
        if (10..=25).contains(&t) {
            let last2 = (t > 10).then(|| Timestamp(t - 1));
            records.push(GpsRecord::new(
                ObjectId(2),
                Point::new(1.3, 1.1),
                Timestamp(t),
                last2,
            ));
        }
    }
    let out = IcpePipeline::run(&base_config(), records);
    let sets = unique_object_sets(&out.patterns);
    assert_eq!(sets, vec![vec![ObjectId(1), ObjectId(2)]]);
    // Witness times must fall inside the co-presence interval.
    for p in &out.patterns {
        for t in p.times.times() {
            assert!((10..=25).contains(&t.0), "{p}");
        }
    }
}

#[test]
fn vba_latency_tradeoff_is_observable() {
    // VBA reports patterns only after episodes close (Lemma 7); FBA reports
    // them as soon as the η-window completes. On a stream that keeps a group
    // together until the very end, FBA reports during the run while VBA
    // reports at finish() — the §6.3 latency-for-throughput trade.
    let gen = GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: 12,
        num_groups: 1,
        group_size: 4,
        num_snapshots: 40,
        cohesion_radius: 0.5,
        seed: 17,
        ..GroupWalkConfig::default()
    });
    let snaps = gen.snapshots();

    use icpe::core::IcpeEngine;
    let mk = |kind| {
        IcpeConfig::builder()
            .constraints(Constraints::new(3, 10, 5, 2).expect("valid"))
            .epsilon(1.5)
            .min_pts(3)
            .enumerator(kind)
            .build()
            .expect("valid config")
    };
    let mut fba = IcpeEngine::new(mk(EnumeratorKind::Fba));
    let mut vba = IcpeEngine::new(mk(EnumeratorKind::Vba));
    let mut fba_mid = 0usize;
    let mut vba_mid = 0usize;
    for s in &snaps {
        fba_mid += fba.push_snapshot(s.clone()).len();
        vba_mid += vba.push_snapshot(s.clone()).len();
    }
    let fba_end = fba.finish().len();
    let vba_end = vba.finish().len();
    assert!(fba_mid > 0, "FBA must report during the stream");
    assert_eq!(vba_mid, 0, "VBA must hold open episodes");
    assert!(vba_end > 0, "VBA must report at closure");
    assert!(fba_mid + fba_end > 0 && vba_mid + vba_end > 0);
}

#[test]
fn single_record_stream() {
    let records = vec![GpsRecord::new(
        ObjectId(1),
        Point::new(0.0, 0.0),
        Timestamp(0),
        None,
    )];
    let out = IcpePipeline::run(&base_config(), records);
    assert!(out.patterns.is_empty());
}
